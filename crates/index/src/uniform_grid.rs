//! The paper's "full grid" baseline (§8.1.3).
//!
//! *"A hash structure that breaks down each attribute into uniformly sized
//! grid cells between their minimum and maximum values. The address for
//! each cell is stored independently … addresses for all cells are sorted
//! using the original ordering of attributes … each cell stores points in
//! a contiguous block of virtual memory in a row store format."*
//!
//! Cell lookup is pure arithmetic (no binary search), which is why the
//! paper calls it a hash structure; the price is that skewed data leaves
//! most cells empty or tiny (Fig. 4) while dense regions overflow.

use crate::pages::{PageStore, MAX_CELLS};
use crate::traits::{MultidimIndex, ScanStats};
use coax_data::{Dataset, RangeQuery, RowId, Value};

/// Equal-width grid over every attribute.
#[derive(Clone, Debug)]
pub struct UniformGrid {
    dims: usize,
    cells_per_dim: usize,
    mins: Vec<Value>,
    /// Reciprocal cell width per dim; 0.0 for constant attributes (all rows
    /// land in cell 0 of that dim).
    inv_widths: Vec<Value>,
    maxs: Vec<Value>,
    strides: Vec<usize>,
    pages: PageStore,
}

impl UniformGrid {
    /// Builds a uniform grid with `cells_per_dim` cells on every attribute.
    ///
    /// # Panics
    ///
    /// Panics if `cells_per_dim == 0` or the directory would exceed the
    /// safety cap.
    pub fn build(dataset: &Dataset, cells_per_dim: usize) -> Self {
        assert!(cells_per_dim > 0, "cells_per_dim must be positive");
        let dims = dataset.dims();
        let n_cells = cells_per_dim
            .checked_pow(dims as u32)
            .filter(|&c| c <= MAX_CELLS)
            // coax-analyze: allow(panic-free-library, documented build-time capacity check on a caller-chosen config — build() has no error channel and a silently truncated directory would be worse)
            .expect("uniform grid directory too large; reduce cells_per_dim");

        let mut mins = Vec::with_capacity(dims);
        let mut maxs = Vec::with_capacity(dims);
        let mut inv_widths = Vec::with_capacity(dims);
        for d in 0..dims {
            let (lo, hi) = dataset.min_max(d).unwrap_or((0.0, 0.0));
            mins.push(lo);
            maxs.push(hi);
            inv_widths.push(if hi > lo { cells_per_dim as Value / (hi - lo) } else { 0.0 });
        }

        let mut strides = vec![1usize; dims];
        for i in (0..dims.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * cells_per_dim;
        }

        let coord = |v: Value, d: usize| -> usize {
            (((v - mins[d]) * inv_widths[d]) as usize).min(cells_per_dim - 1)
        };
        let cell_of = |r: RowId| -> usize {
            (0..dims).map(|d| coord(dataset.value(r, d), d) * strides[d]).sum()
        };
        let pages = PageStore::build(dataset, n_cells, None, cell_of);

        Self { dims, cells_per_dim, mins, inv_widths, maxs, strides, pages }
    }

    /// Total directory cells.
    pub fn n_cells(&self) -> usize {
        self.pages.n_cells()
    }

    /// Row count per cell (the Fig. 4a distribution for uniform layouts).
    pub fn cell_lengths(&self) -> Vec<usize> {
        self.pages.cell_lengths()
    }

    fn coord_clamped(&self, v: Value, d: usize) -> usize {
        let raw = (v - self.mins[d]) * self.inv_widths[d];
        if raw <= 0.0 {
            0
        } else {
            (raw as usize).min(self.cells_per_dim - 1)
        }
    }
}

impl MultidimIndex for UniformGrid {
    fn name(&self) -> &str {
        "full-grid"
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn range_query_stats(&self, query: &RangeQuery, out: &mut Vec<RowId>) -> ScanStats {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut stats = ScanStats::default();
        if self.pages.is_empty() || query.is_empty() {
            return stats;
        }
        let mut ranges = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let (lo, hi) = (query.lo(d), query.hi(d));
            if hi < self.mins[d] || lo > self.maxs[d] {
                return stats; // query misses the data range entirely
            }
            let c_lo = if lo == f64::NEG_INFINITY { 0 } else { self.coord_clamped(lo, d) };
            let c_hi = if hi == f64::INFINITY {
                self.cells_per_dim - 1
            } else {
                self.coord_clamped(hi, d)
            };
            ranges.push((c_lo, c_hi));
        }

        // Odometer over the cell ranges (empty cells still cost a lookup —
        // the paper stresses exactly this drawback).
        let mut idx: Vec<usize> = ranges.iter().map(|r| r.0).collect();
        'outer: loop {
            let addr: usize = idx.iter().zip(&self.strides).map(|(i, s)| i * s).sum();
            stats.cells_visited += 1;
            let (examined, matched) = self.pages.scan_cell(addr, query, out);
            stats.rows_examined += examined;
            stats.matches += matched;
            let mut d = self.dims - 1;
            loop {
                idx[d] += 1;
                if idx[d] <= ranges[d].1 {
                    continue 'outer;
                }
                idx[d] = ranges[d].0;
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
            }
        }
        stats
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(RowId, &[Value])) {
        self.pages.for_each_entry(f)
    }

    fn memory_overhead(&self) -> usize {
        // min + inv_width + max per dimension, plus the offsets table.
        3 * self.dims * std::mem::size_of::<Value>() + self.pages.offsets_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_scan::FullScan;
    use coax_data::synth::{GaussianClustersConfig, Generator, UniformConfig};
    use coax_data::workload::knn_rectangle_queries;

    #[test]
    fn equivalence_with_fullscan() {
        let ds = UniformConfig::cube(3, 1200, 31).generate();
        let grid = UniformGrid::build(&ds, 5);
        let fs = FullScan::build(&ds);
        for q in knn_rectangle_queries(&ds, 15, 20, 2) {
            let mut a = grid.range_query(&q);
            let mut b = fs.range_query(&q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn point_query_single_cell() {
        let ds = UniformConfig::cube(2, 800, 32).generate();
        let grid = UniformGrid::build(&ds, 10);
        let q = RangeQuery::point(&ds.row(5));
        let mut out = Vec::new();
        let stats = grid.range_query_stats(&q, &mut out);
        assert_eq!(stats.cells_visited, 1, "a point lands in exactly one cell");
        assert!(out.contains(&5));
    }

    #[test]
    fn skewed_data_concentrates_in_few_cells() {
        let ds = GaussianClustersConfig::map(5000, 33).generate();
        let grid = UniformGrid::build(&ds, 16);
        let mut lengths = grid.cell_lengths();
        lengths.sort_unstable_by(|a, b| b.cmp(a));
        // Fig. 4's pathology: the top 10 % of uniform cells hold most rows.
        let top_decile: usize = lengths[..lengths.len() / 10].iter().sum();
        assert!(
            top_decile > ds.len() / 2,
            "clustered data should concentrate: top decile holds {top_decile}/{}",
            ds.len()
        );
    }

    #[test]
    fn miss_outside_range_is_free() {
        let ds = UniformConfig::cube(2, 100, 34).generate();
        let grid = UniformGrid::build(&ds, 4);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(0, 10.0, 20.0);
        let mut out = Vec::new();
        let stats = grid.range_query_stats(&q, &mut out);
        assert_eq!(stats, ScanStats::default());
    }

    #[test]
    fn constant_column_collapses_to_one_slice() {
        let ds = Dataset::new(vec![(0..50).map(|i| i as f64).collect(), vec![3.0; 50]]);
        let grid = UniformGrid::build(&ds, 4);
        let q = RangeQuery::point(&[7.0, 3.0]);
        assert_eq!(grid.range_query(&q), vec![7]);
    }

    #[test]
    fn max_value_maps_into_last_cell() {
        let ds = Dataset::new(vec![vec![0.0, 1.0, 2.0, 3.0]]);
        let grid = UniformGrid::build(&ds, 3);
        let q = RangeQuery::point(&[3.0]);
        assert_eq!(grid.range_query(&q), vec![3]);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(vec![vec![], vec![]]);
        let grid = UniformGrid::build(&ds, 4);
        assert!(grid.is_empty());
        assert!(grid.range_query(&RangeQuery::unbounded(2)).is_empty());
    }

    #[test]
    fn overhead_is_offsets_plus_constants() {
        let ds = UniformConfig::cube(2, 100, 35).generate();
        let grid = UniformGrid::build(&ds, 4);
        assert_eq!(grid.memory_overhead(), 3 * 2 * 8 + (16 + 1) * 4);
    }
}
