//! Multidimensional index substrates for the COAX reproduction.
//!
//! Every structure the paper builds on or compares against (§6, §8.1.3) is
//! implemented here behind one trait, [`MultidimIndex`]:
//!
//! * [`FullScan`] — the "check every row" baseline.
//! * [`UniformGrid`] — the paper's *full grid*: equal-width cells between
//!   each attribute's min and max, directory in row-major attribute order.
//! * [`GridFile`] — the paper's modified grid file (§6): quantile-aligned
//!   cell boundaries, the same number of grid lines per attribute,
//!   contiguous row-store cells, and an optional *sorted dimension* that
//!   replaces one level of grid lines with binary search (as in Flood).
//!   This is the substrate under both the COAX primary and outlier indexes.
//! * [`ColumnFiles`] — the paper's strongest grid baseline: a [`GridFile`]
//!   over all attributes but one, with the remaining attribute sorted
//!   inside each cell.
//! * [`RTree`] — a Sort-Tile-Recursive bulk-loaded R-tree with tunable
//!   node capacities (the paper tunes 2–32 and finds 8–12 best).
//!
//! All indexes answer *exact* rectangle queries: candidates fetched from
//! the directory are re-checked against the full predicate. The
//! grid-family cell scans and [`FullScan`]'s heap pass all run on one
//! vectorized columnar kernel ([`kernel`]): per-cell column slabs,
//! 64-row tiles with `u64` selection masks, dimension-at-a-time
//! evaluation — bit-identical to the scalar reference path kept behind
//! [`kernel::force_scalar`] (`COAX_SCAN_KERNEL=scalar`).
//!
//! Callers normally do not name these types at all: [`BackendSpec`]
//! describes any of them as a plain config value and
//! [`BackendSpec::build`] returns the built structure as a
//! `Box<dyn MultidimIndex>` — the factory seam the COAX outlier store,
//! the bench harness, and the equivalence tests are written against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod column_files;
pub mod full_scan;
pub mod grid_file;
pub mod kernel;
pub mod pages;
pub mod rtree;
pub mod telemetry;
pub mod traits;
pub mod uniform_grid;

pub use backend::BackendSpec;
pub use column_files::ColumnFiles;
pub use full_scan::FullScan;
pub use grid_file::{GridFile, GridFileConfig, SharedProbeStats};
pub use rtree::{RTree, RTreeConfig};
pub use traits::{
    CursorSource, FilteredProbe, MultidimIndex, QueryResult, RowCursor, ScanStats,
};
pub use uniform_grid::UniformGrid;
