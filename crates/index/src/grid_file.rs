//! The paper's modified grid file (§6).
//!
//! Differences from the classic grid file of Nievergelt et al. that the
//! paper calls out, all implemented here:
//!
//! * cell boundaries are chosen **by quantiles** along each dimension
//!   (equi-depth, driven by the data's CDF) instead of by splitting;
//! * the **same number of grid lines** is used for every gridded attribute;
//! * cell addresses are laid out in **row-major order of the original
//!   attribute ordering**;
//! * each cell stores its rows in a **contiguous row-store block**;
//! * optionally, rows inside every cell are **sorted by one attribute**
//!   that then needs no grid lines — lookups on it use two bounding binary
//!   searches (the Flood trick). A dataset with `n` dims and `m` predicted
//!   attributes therefore needs only an `n − m − 1`-dimensional directory.
//!
//! The same type serves as the COAX primary index (gridding only the
//! indexed attributes), the COAX outlier index (gridding everything), and
//! — through [`crate::ColumnFiles`] — the strongest baseline.

use crate::kernel;
use crate::pages::{PageStore, MAX_CELLS};
use crate::traits::{
    CursorSource, FilteredProbe, MultidimIndex, QueryResult, RowCursor, ScanStats,
};
use coax_data::stats::equi_depth_boundaries;
use coax_data::{Dataset, RangeQuery, RowId, Value};

/// Work-sharing counters of one [`GridFile::batch_range_query_filtered_shared`]
/// call — the observable difference between batched and probe-at-a-time
/// execution (the per-probe [`ScanStats`] are identical by contract, so
/// they cannot show the sharing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedProbeStats {
    /// Distinct directory cells swept: each is located once per batch,
    /// and every probe run through it is scanned back-to-back while the
    /// page is hot, however many (deduplicated) probes land in it.
    pub cells_scanned: usize,
    /// Total per-probe cell visits — exactly what an unshared,
    /// probe-at-a-time execution would scan (and what the per-probe
    /// `cells_visited` counters sum to, duplicates included).
    /// `cell_visits − cells_scanned` is the directory work the batch
    /// deduplicated.
    pub cell_visits: usize,
}

/// Build-time configuration of a [`GridFile`].
#[derive(Clone, Debug)]
pub struct GridFileConfig {
    /// Attributes that receive grid lines, in original order.
    pub grid_dims: Vec<usize>,
    /// Attribute sorted inside each cell (must not be in `grid_dims`).
    pub sort_dim: Option<usize>,
    /// Number of cells per gridded attribute (the paper uses the same
    /// count for every attribute).
    pub cells_per_dim: usize,
}

impl GridFileConfig {
    /// Grid lines on every attribute, no sorted dimension — the layout the
    /// outlier index uses by default.
    pub fn all_dims(dims: usize, cells_per_dim: usize) -> Self {
        Self { grid_dims: (0..dims).collect(), sort_dim: None, cells_per_dim }
    }

    /// Grid lines on every attribute except `sort_dim`, which is sorted
    /// inside cells — the column-files / COAX-primary layout.
    pub fn with_sort(dims: usize, sort_dim: usize, cells_per_dim: usize) -> Self {
        assert!(sort_dim < dims, "sort dimension out of range");
        Self {
            grid_dims: (0..dims).filter(|&d| d != sort_dim).collect(),
            sort_dim: Some(sort_dim),
            cells_per_dim,
        }
    }

    /// Grid lines on a chosen subset, sorted dimension optional — the COAX
    /// primary layout (grid only the indexed attributes).
    pub fn subset(
        grid_dims: Vec<usize>,
        sort_dim: Option<usize>,
        cells_per_dim: usize,
    ) -> Self {
        Self { grid_dims, sort_dim, cells_per_dim }
    }
}

/// A quantile-boundary grid file with contiguous row-store cells.
#[derive(Clone, Debug)]
pub struct GridFile {
    dims: usize,
    grid_dims: Vec<usize>,
    /// Per gridded attribute: `cells_per_dim + 1` ascending boundaries.
    boundaries: Vec<Vec<Value>>,
    /// Per gridded attribute: row-major stride inside the directory.
    strides: Vec<usize>,
    cells_per_dim: usize,
    pages: PageStore,
}

impl GridFile {
    /// Builds the grid file over `dataset`.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration: out-of-range dims, duplicate or
    /// unsorted `grid_dims`, `sort_dim` also gridded, zero cells, or a
    /// directory larger than the 2²⁸-cell safety cap.
    pub fn build(dataset: &Dataset, config: &GridFileConfig) -> Self {
        let dims = dataset.dims();
        let k = config.cells_per_dim;
        assert!(k > 0, "cells_per_dim must be positive");
        assert!(
            config.grid_dims.windows(2).all(|w| w[0] < w[1]),
            "grid_dims must be strictly ascending (original attribute order)"
        );
        assert!(config.grid_dims.iter().all(|&d| d < dims), "grid dimension out of range");
        if let Some(sd) = config.sort_dim {
            assert!(sd < dims, "sort dimension out of range");
            assert!(!config.grid_dims.contains(&sd), "sort dimension must not also be gridded");
        }
        let n_cells = k
            .checked_pow(config.grid_dims.len() as u32)
            .filter(|&c| c <= MAX_CELLS)
            // coax-analyze: allow(panic-free-library, documented build-time capacity check on a caller-chosen config — build() has no error channel and a silently truncated directory would be worse)
            .expect("grid directory too large; reduce cells_per_dim or grid_dims");

        let boundaries: Vec<Vec<Value>> = config
            .grid_dims
            .iter()
            .map(|&d| equi_depth_boundaries(dataset.column(d), k))
            .collect();

        // Row-major strides in original attribute order: the last gridded
        // attribute varies fastest.
        let g = config.grid_dims.len();
        let mut strides = vec![1usize; g];
        for i in (0..g.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * k;
        }

        let cell_of = |r: RowId| -> usize {
            let mut addr = 0;
            for (i, &d) in config.grid_dims.iter().enumerate() {
                addr += cell_index(&boundaries[i], dataset.value(r, d)) * strides[i];
            }
            addr
        };
        let pages = PageStore::build(dataset, n_cells, config.sort_dim, cell_of);

        Self {
            dims,
            grid_dims: config.grid_dims.clone(),
            boundaries,
            strides,
            cells_per_dim: k,
            pages,
        }
    }

    /// Attributes carrying grid lines.
    pub fn grid_dims(&self) -> &[usize] {
        &self.grid_dims
    }

    /// The in-cell sorted attribute, if configured.
    pub fn sort_dim(&self) -> Option<usize> {
        self.pages.sort_dim()
    }

    /// Total number of directory cells.
    pub fn n_cells(&self) -> usize {
        self.pages.n_cells()
    }

    /// Row count of every cell — Fig. 4a plots this distribution.
    pub fn cell_lengths(&self) -> Vec<usize> {
        self.pages.cell_lengths()
    }

    /// Range query with separate *navigation* and *filter* predicates.
    ///
    /// Directory ranges and the in-cell binary search use `nav`; row
    /// acceptance uses `filter`. COAX navigates with its translated query
    /// while filtering with the user's original one. `nav` must not
    /// exclude any `filter`-matching row stored in this index — COAX
    /// guarantees that through the soft-FD margin invariant.
    pub fn range_query_filtered(
        &self,
        nav: &RangeQuery,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> ScanStats {
        assert_eq!(filter.dims(), self.dims, "filter query dimensionality mismatch");
        let mut stats = ScanStats::default();
        let Some(ranges) = self.cell_ranges(nav) else {
            return stats;
        };
        for_each_address(&ranges, &self.strides, |addr| {
            stats.cells_visited += 1;
            let (examined, matched) = self.pages.scan_cell_narrowed(addr, nav, filter, out);
            stats.rows_examined += examined;
            stats.matches += matched;
        });
        stats
    }

    /// Per gridded attribute, the inclusive directory-cell range
    /// intersecting `nav` — `None` when no cell is visited at all (empty
    /// store, empty rectangle, or a probe that provably misses the data
    /// range on some attribute). Shared by the single and the batched
    /// probe so their directory traversal cannot diverge.
    fn cell_ranges(&self, nav: &RangeQuery) -> Option<Vec<(usize, usize)>> {
        assert_eq!(nav.dims(), self.dims, "nav query dimensionality mismatch");
        if self.pages.is_empty() || nav.is_empty() {
            return None;
        }
        let mut ranges = Vec::with_capacity(self.grid_dims.len());
        for (i, &d) in self.grid_dims.iter().enumerate() {
            let b = &self.boundaries[i];
            let (lo, hi) = (nav.lo(d), nav.hi(d));
            // Early out: the query misses this attribute's data range.
            if hi < b[0] || lo > b[b.len() - 1] {
                return None;
            }
            let c_lo = if lo == f64::NEG_INFINITY { 0 } else { cell_index(b, lo) };
            let c_hi =
                if hi == f64::INFINITY { self.cells_per_dim - 1 } else { cell_index(b, hi) };
            ranges.push((c_lo, c_hi));
        }
        Some(ranges)
    }

    /// Streaming navigate-and-filter scan: a [`RowCursor`] yielding one
    /// chunk per directory cell, in the same ascending odometer order —
    /// and with the same per-cell binary searches and filter checks — as
    /// [`GridFile::range_query_filtered`], so the concatenated chunks and
    /// the final [`crate::ScanStats`] are identical to the materialized
    /// call. First results leave after the first populated cell instead
    /// of after the whole directory pass.
    pub fn filtered_cursor(&self, nav: &RangeQuery, filter: &RangeQuery) -> RowCursor<'_> {
        assert_eq!(filter.dims(), self.dims, "filter query dimensionality mismatch");
        let odometer = match self.cell_ranges(nav) {
            Some(ranges) => Odometer::new(ranges, self.strides.clone()),
            None => Odometer::empty(),
        };
        RowCursor::new(Box::new(CellCursor {
            grid: self,
            nav: nav.clone(),
            filter: filter.clone(),
            odometer,
        }))
    }

    /// The multi-query fused probe: executes every `(nav, filter)` probe
    /// of a batch in **one ascending pass over the union of their
    /// directory cells**, returning per-probe results plus the
    /// batch-level sharing counters.
    ///
    /// Work sharing, and what stays exact:
    ///
    /// * **duplicate probes are answered once**: probes whose `nav` and
    ///   `filter` are value-equal collapse onto one representative, and
    ///   its result is copied — a batch of hot repeated queries pays for
    ///   each distinct query once, per-copy counters intact;
    /// * **shared cells are scanned once per batch**: the distinct
    ///   probes' directory odometers are merged into one ascending
    ///   address pass, so each distinct cell is located once and every
    ///   probe's narrowed run through it is scanned back-to-back while
    ///   the page is hot (instead of re-visited once per probe, spread
    ///   across the whole batch);
    /// * per-probe [`QueryResult`]s are **identical** — ids in the same
    ///   order, [`ScanStats`] bit for bit — to calling
    ///   [`GridFile::range_query_filtered`] once per probe: runs come
    ///   from the same two binary searches, rows from the same filter
    ///   checks, and cells emerge in the same ascending address order
    ///   the per-probe odometer produces.
    pub fn batch_range_query_filtered_shared(
        &self,
        probes: &[FilteredProbe<'_>],
    ) -> (Vec<QueryResult>, SharedProbeStats) {
        let mut results = vec![QueryResult::default(); probes.len()];
        let mut shared = SharedProbeStats::default();
        for probe in probes {
            assert_eq!(probe.filter.dims(), self.dims, "filter query dimensionality mismatch");
        }
        let representative = crate::traits::probe_representatives(probes);

        // Enumerate every (cell address, probe) visit the probe-at-a-time
        // path would make — representatives only.
        let mut visits: Vec<(usize, u32)> = Vec::new();
        for (pi, probe) in probes.iter().enumerate() {
            if representative[pi] != pi as u32 {
                continue;
            }
            let Some(ranges) = self.cell_ranges(probe.nav) else {
                continue;
            };
            for_each_address(&ranges, &self.strides, |addr| visits.push((addr, pi as u32)));
        }
        // Ascending address order groups shared cells; each probe still
        // sees its own cells in ascending order — the order its own
        // odometer would have produced.
        visits.sort_unstable();

        let mut i = 0;
        // Tile-mask caches of the cell currently being swept, one per
        // distinct filter rectangle, keyed by a representative probe
        // index; rebuilt for each cell.
        let mut caches: Vec<(u32, kernel::CellMaskCache)> = Vec::new();
        while i < visits.len() {
            let addr = visits[i].0;
            shared.cells_scanned += 1;
            caches.clear();
            let (cs, ce) = self.pages.cell_run(addr);
            // All probes landing in this cell scan their narrowed runs
            // back-to-back: the page is resolved once, stays hot, and —
            // beyond `probe_representatives`' whole-probe dedup — probes
            // whose *filters* are value-equal (e.g. the disjoint
            // navigation rectangles one COAX query fans out into) share
            // each 64-row tile's per-dimension selection masks: the
            // first such probe computes them, the rest only trim and
            // gather.
            while i < visits.len() && visits[i].0 == addr {
                let pi = visits[i].1 as usize;
                let (s, e) = self.pages.narrowed_run(addr, probes[pi].nav);
                let r = &mut results[pi];
                r.stats.cells_visited += 1;
                r.stats.rows_examined += e - s;
                r.stats.matches += if kernel::scalar_forced() {
                    self.pages.scan_run_scalar(s, e, probes[pi].filter, &mut r.ids)
                } else {
                    let slot = caches.iter().position(|(rep, _)| {
                        crate::traits::cmp_query_bounds(
                            probes[*rep as usize].filter,
                            probes[pi].filter,
                        ) == std::cmp::Ordering::Equal
                    });
                    let at = match slot {
                        Some(idx) => idx,
                        None => {
                            caches.push((pi as u32, kernel::CellMaskCache::new(cs, ce)));
                            caches.len() - 1
                        }
                    };
                    self.pages.scan_run_cached(
                        &mut caches[at].1,
                        s,
                        e,
                        probes[pi].filter,
                        &mut r.ids,
                    )
                };
                i += 1;
            }
        }

        // Copy representatives' answers to their duplicates, then count
        // what an unshared execution would have visited (duplicates
        // included, so `cell_visits − cells_scanned` is the full win).
        crate::traits::copy_to_duplicates(&mut results, &representative);
        shared.cell_visits = results.iter().map(|r| r.stats.cells_visited).sum();
        crate::telemetry::record_shared_probe(shared.cells_scanned, shared.cell_visits);
        (results, shared)
    }
}

/// The incremental scan behind [`GridFile::filtered_cursor`]: each
/// `next_chunk` call visits the next odometer address and scans that one
/// cell, exactly as the materialized pass would.
struct CellCursor<'a> {
    grid: &'a GridFile,
    nav: RangeQuery,
    filter: RangeQuery,
    /// `'static`: the cursor owns its range/stride copies — it outlives
    /// the call that computed them.
    odometer: Odometer<'static>,
}

impl CursorSource for CellCursor<'_> {
    fn next_chunk(&mut self, out: &mut Vec<RowId>, stats: &mut ScanStats) -> bool {
        let Some(addr) = self.odometer.next() else {
            return false;
        };
        stats.cells_visited += 1;
        let (examined, matched) =
            self.grid.pages.scan_cell_narrowed(addr, &self.nav, &self.filter, out);
        stats.rows_examined += examined;
        stats.matches += matched;
        true
    }
}

impl MultidimIndex for GridFile {
    fn name(&self) -> &str {
        "grid-file"
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn range_query_stats(&self, query: &RangeQuery, out: &mut Vec<RowId>) -> ScanStats {
        GridFile::range_query_filtered(self, query, query, out)
    }

    /// Fused override of the trait's probe-then-filter default: the
    /// directory ranges and the in-cell binary search are narrowed by
    /// `nav` while rows are accepted against `filter`, in one pass — the
    /// COAX primary's hot path loses nothing to the trait seam.
    fn range_query_filtered(
        &self,
        nav: &RangeQuery,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> ScanStats {
        GridFile::range_query_filtered(self, nav, filter, out)
    }

    /// Streaming override: one chunk per directory cell, ascending
    /// odometer order (see [`GridFile::filtered_cursor`]).
    fn range_query_cursor(&self, query: &RangeQuery) -> RowCursor<'_> {
        self.filtered_cursor(query, query)
    }

    /// Streaming navigate-and-filter override (see
    /// [`GridFile::filtered_cursor`]).
    fn range_query_filtered_cursor(
        &self,
        nav: &RangeQuery,
        filter: &RangeQuery,
    ) -> RowCursor<'_> {
        self.filtered_cursor(nav, filter)
    }

    /// Fused multi-probe override: duplicate probes are answered once,
    /// and the distinct probes run as one ascending pass over the union
    /// of their directory cells (see
    /// [`GridFile::batch_range_query_filtered_shared`] for the sharing
    /// counters). Per-probe results and stats are identical to the
    /// per-probe loop the trait default would run.
    fn batch_range_query_filtered(&self, probes: &[FilteredProbe<'_>]) -> Vec<QueryResult> {
        self.batch_range_query_filtered_shared(probes).0
    }

    /// Batched plain queries share cells the same way: each query is a
    /// probe with `nav == filter`, which makes every per-query result
    /// identical to [`GridFile::range_query_stats`] (itself the fused
    /// probe with `nav == filter`).
    fn batch_query(&self, queries: &[RangeQuery]) -> Vec<QueryResult> {
        let probes: Vec<FilteredProbe<'_>> =
            queries.iter().map(|q| FilteredProbe { nav: q, filter: q }).collect();
        self.batch_range_query_filtered_shared(&probes).0
    }

    /// Cell order, packed order within each cell — rows gathered back
    /// from the column slabs (used by COAX's rebuild path to reconstruct
    /// its dataset).
    fn for_each_entry(&self, f: &mut dyn FnMut(RowId, &[Value])) {
        self.pages.for_each_entry(f)
    }

    fn memory_overhead(&self) -> usize {
        let boundary_bytes: usize =
            self.boundaries.iter().map(|b| b.len() * std::mem::size_of::<Value>()).sum();
        boundary_bytes + self.pages.offsets_bytes()
    }
}

/// Cell index of value `v` given ascending boundaries `b` of length `k+1`:
/// cell `i` covers `[b[i], b[i+1])`, the last cell is closed, and
/// out-of-range values clamp into the edge cells (needed for queries whose
/// bounds exceed the data range and for future inserts).
fn cell_index(b: &[Value], v: Value) -> usize {
    let k = b.len() - 1;
    if k <= 1 {
        return 0;
    }
    // Interior boundaries are b[1..k]; count how many are <= v.
    let interior = &b[1..k];
    interior.partition_point(|&x| x <= v)
}

/// Ascending odometer over the Cartesian product of inclusive `ranges`,
/// yielding each cell's linear directory address. With no gridded
/// dimensions there is exactly one cell: address 0. This is the **only**
/// directory-traversal order in the crate — the materialized scan, the
/// batched multi-probe, and the streaming cursor all draw addresses from
/// it, so their cell order cannot diverge.
///
/// Ranges and strides are `Cow` so the materialized hot path borrows
/// them allocation-free while the streaming cursor (which outlives the
/// call that computed its ranges) owns its copies.
struct Odometer<'a> {
    ranges: std::borrow::Cow<'a, [(usize, usize)]>,
    strides: std::borrow::Cow<'a, [usize]>,
    idx: Vec<usize>,
    done: bool,
}

impl<'a> Odometer<'a> {
    fn new(
        ranges: impl Into<std::borrow::Cow<'a, [(usize, usize)]>>,
        strides: impl Into<std::borrow::Cow<'a, [usize]>>,
    ) -> Self {
        let (ranges, strides) = (ranges.into(), strides.into());
        debug_assert_eq!(ranges.len(), strides.len());
        let idx = ranges.iter().map(|r| r.0).collect();
        Self { ranges, strides, idx, done: false }
    }

    /// An odometer that yields no address at all (the navigation
    /// rectangle provably misses every cell).
    fn empty() -> Odometer<'static> {
        Odometer {
            ranges: Vec::new().into(),
            strides: Vec::new().into(),
            idx: Vec::new(),
            done: true,
        }
    }
}

impl Iterator for Odometer<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.done {
            return None;
        }
        let addr = self.idx.iter().zip(self.strides.iter()).map(|(i, s)| i * s).sum();
        if self.ranges.is_empty() {
            self.done = true;
            return Some(addr);
        }
        let mut d = self.ranges.len() - 1;
        loop {
            self.idx[d] += 1;
            if self.idx[d] <= self.ranges[d].1 {
                break;
            }
            self.idx[d] = self.ranges[d].0;
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
        }
        Some(addr)
    }
}

/// Invokes `f` with every address of the odometer pass (the callback
/// shape the materialized scans use; the odometer borrows both slices).
fn for_each_address(ranges: &[(usize, usize)], strides: &[usize], f: impl FnMut(usize)) {
    Odometer::new(ranges, strides).for_each(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_scan::FullScan;
    use coax_data::synth::{Generator, UniformConfig};

    fn grid_matches_fullscan(ds: &Dataset, config: &GridFileConfig, queries: &[RangeQuery]) {
        let grid = GridFile::build(ds, config);
        let fs = FullScan::build(ds);
        for q in queries {
            let mut expected = fs.range_query(q);
            let mut got = grid.range_query(q);
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "query {q:?}");
        }
    }

    #[test]
    fn cell_index_basics() {
        let b = vec![0.0, 10.0, 20.0, 30.0];
        assert_eq!(cell_index(&b, -5.0), 0);
        assert_eq!(cell_index(&b, 0.0), 0);
        assert_eq!(cell_index(&b, 9.99), 0);
        assert_eq!(cell_index(&b, 10.0), 1);
        assert_eq!(cell_index(&b, 29.9), 2);
        assert_eq!(cell_index(&b, 30.0), 2);
        assert_eq!(cell_index(&b, 99.0), 2);
    }

    #[test]
    fn cell_index_with_duplicate_boundaries() {
        // Heavy repetition collapses boundaries: [1,1,1,9].
        let b = vec![1.0, 1.0, 1.0, 9.0];
        assert_eq!(cell_index(&b, 0.5), 0);
        assert_eq!(cell_index(&b, 1.0), 2); // lands after both duplicate interior bounds
        assert_eq!(cell_index(&b, 5.0), 2);
    }

    #[test]
    fn for_each_address_covers_product() {
        let mut seen = Vec::new();
        for_each_address(&[(0, 1), (1, 2)], &[3, 1], |a| seen.push(a));
        assert_eq!(seen, vec![1, 2, 4, 5]);
        // No gridded dims → single cell 0.
        let mut single = Vec::new();
        for_each_address(&[], &[], |a| single.push(a));
        assert_eq!(single, vec![0]);
    }

    #[test]
    fn equivalence_with_fullscan_uniform_data() {
        let ds = UniformConfig::cube(3, 1500, 21).generate();
        let queries: Vec<RangeQuery> =
            coax_data::workload::knn_rectangle_queries(&ds, 12, 30, 1);
        grid_matches_fullscan(&ds, &GridFileConfig::all_dims(3, 4), &queries);
        grid_matches_fullscan(&ds, &GridFileConfig::with_sort(3, 1, 5), &queries);
        grid_matches_fullscan(&ds, &GridFileConfig::subset(vec![0], Some(2), 6), &queries);
    }

    #[test]
    fn point_queries_hit() {
        let ds = UniformConfig::cube(2, 400, 3).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::with_sort(2, 1, 8));
        for r in [0u32, 17, 399] {
            let q = RangeQuery::point(&ds.row(r));
            let hits = grid.range_query(&q);
            assert!(hits.contains(&r), "point query must find its own row");
        }
    }

    #[test]
    fn miss_outside_data_range_visits_no_cells() {
        let ds = UniformConfig::cube(2, 100, 4).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::all_dims(2, 4));
        let mut q = RangeQuery::unbounded(2);
        q.constrain(0, 5.0, 6.0); // data is in [0, 1]
        let mut out = Vec::new();
        let stats = grid.range_query_stats(&q, &mut out);
        assert_eq!(stats.cells_visited, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_rectangle_returns_nothing() {
        let ds = UniformConfig::cube(2, 100, 5).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::all_dims(2, 3));
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 0.9, 0.1);
        assert!(grid.range_query(&q).is_empty());
    }

    #[test]
    fn quantile_boundaries_balance_cells_on_skewed_data() {
        // Exponential-ish skew on dim 0.
        let xs: Vec<f64> = (0..2000).map(|i| (i as f64 / 100.0).exp()).collect();
        let ys: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let ds = Dataset::new(vec![xs, ys]);
        let grid = GridFile::build(&ds, &GridFileConfig::subset(vec![0], None, 10));
        let lengths = grid.cell_lengths();
        let (min, max) = (*lengths.iter().min().unwrap(), *lengths.iter().max().unwrap());
        assert!(max <= min + 2, "equi-depth cells should be balanced, got min={min} max={max}");
    }

    #[test]
    fn sorted_dim_reduces_rows_examined() {
        let ds = UniformConfig::cube(2, 5000, 6).generate();
        // One big cell on dim 0, sort on dim 1.
        let sorted = GridFile::build(&ds, &GridFileConfig::subset(vec![0], Some(1), 1));
        let flat = GridFile::build(&ds, &GridFileConfig::subset(vec![0], None, 1));
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 0.4, 0.41);
        let mut out = Vec::new();
        let s_sorted = sorted.range_query_stats(&q, &mut out);
        out.clear();
        let s_flat = flat.range_query_stats(&q, &mut out);
        assert_eq!(s_sorted.matches, s_flat.matches);
        assert!(
            s_sorted.rows_examined * 10 < s_flat.rows_examined,
            "binary search should skip most rows: {} vs {}",
            s_sorted.rows_examined,
            s_flat.rows_examined
        );
    }

    #[test]
    fn nav_filter_split_navigates_with_tighter_bounds() {
        let ds = UniformConfig::cube(2, 2000, 7).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::with_sort(2, 1, 8));
        let filter = RangeQuery::unbounded(2);
        let mut nav = RangeQuery::unbounded(2);
        nav.constrain(0, 0.0, 0.25);
        let mut out = Vec::new();
        let stats = grid.range_query_filtered(&nav, &filter, &mut out);
        // Navigation restricted to ~1/4 of the directory; the unbounded
        // filter accepts every row scanned there.
        assert!(stats.cells_visited <= grid.n_cells() / 2);
        assert_eq!(stats.matches, out.len());
        assert!(out.len() < ds.len());
    }

    #[test]
    fn batched_probes_share_cells_but_keep_stats_exact() {
        let ds = UniformConfig::cube(2, 3000, 23).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::with_sort(2, 1, 8));
        // Three probes over overlapping x bands: their directory ranges
        // intersect, so the batch must visit the shared cells once.
        let mut queries = Vec::new();
        for (lo, hi) in [(0.0, 0.5), (0.25, 0.75), (0.4, 0.6)] {
            let mut q = RangeQuery::unbounded(2);
            q.constrain(0, lo, hi);
            q.constrain(1, 0.1, 0.9);
            queries.push(q);
        }
        let probes: Vec<FilteredProbe<'_>> =
            queries.iter().map(|q| FilteredProbe { nav: q, filter: q }).collect();
        let (results, shared) = grid.batch_range_query_filtered_shared(&probes);

        // The sharing claim: every distinct cell is scanned once per
        // batch, strictly fewer scans than the per-probe visit count.
        assert!(shared.cells_scanned < shared.cell_visits, "overlapping probes must share");
        let visits: usize = results.iter().map(|r| r.stats.cells_visited).sum();
        assert_eq!(visits, shared.cell_visits, "per-probe counters stay unshared");

        // The exactness claim: per-probe ids (same order) and ScanStats
        // (bit for bit) equal the probe-at-a-time fused scan.
        for (p, r) in probes.iter().zip(&results) {
            let mut ids = Vec::new();
            let stats = grid.range_query_filtered(p.nav, p.filter, &mut ids);
            assert_eq!(r.stats, stats);
            assert_eq!(r.ids, ids);
        }
    }

    #[test]
    fn identical_probes_are_fully_deduplicated() {
        let ds = UniformConfig::cube(2, 1000, 24).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::all_dims(2, 4));
        let mut q = RangeQuery::unbounded(2);
        q.constrain(0, 0.2, 0.8);
        let probes = vec![FilteredProbe { nav: &q, filter: &q }; 5];
        let (results, shared) = grid.batch_range_query_filtered_shared(&probes);
        // Five identical probes collapse onto one set of cells...
        assert_eq!(shared.cell_visits, 5 * shared.cells_scanned);
        assert_eq!(shared.cells_scanned, results[0].stats.cells_visited);
        // ...and every copy still reports the full sequential counters.
        for r in &results {
            assert_eq!(r, &results[0]);
            assert_eq!(r.stats.matches, r.ids.len());
        }
    }

    #[test]
    fn batched_probe_equivalence_randomized() {
        use coax_data::workload::knn_rectangle_queries;
        for seed in 0..4u64 {
            let ds = UniformConfig::cube(3, 2000, 60 + seed).generate();
            let grid = GridFile::build(&ds, &GridFileConfig::with_sort(3, 2, 5));
            let queries = knn_rectangle_queries(&ds, 20, 30, seed);
            // Mixed navs and filters (nav ⊇ filter on the narrowed dims),
            // including an empty rectangle and a miss.
            let mut navs = Vec::new();
            let mut filters = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                let mut nav = q.clone();
                if i % 2 == 0 {
                    // Loosen one dim: nav strictly covers filter there.
                    nav.constrain(0, f64::NEG_INFINITY, f64::INFINITY);
                }
                navs.push(nav);
                filters.push(q.clone());
            }
            let mut empty = RangeQuery::unbounded(3);
            empty.constrain(1, 2.0, 1.0);
            navs.push(empty.clone());
            filters.push(empty);
            let mut miss = RangeQuery::unbounded(3);
            miss.constrain(0, 50.0, 60.0); // data lives in [0, 1]
            navs.push(miss.clone());
            filters.push(miss);

            let probes: Vec<FilteredProbe<'_>> = navs
                .iter()
                .zip(&filters)
                .map(|(nav, filter)| FilteredProbe { nav, filter })
                .collect();
            let batched = grid.batch_range_query_filtered_shared(&probes).0;
            for (p, r) in probes.iter().zip(&batched) {
                let mut ids = Vec::new();
                let stats = grid.range_query_filtered(p.nav, p.filter, &mut ids);
                assert_eq!(r.stats, stats, "stats diverged (seed {seed})");
                assert_eq!(r.ids, ids, "ids diverged (seed {seed})");
            }
        }
    }

    #[test]
    fn cursor_streams_cell_by_cell_and_matches_materialized() {
        use coax_data::workload::knn_rectangle_queries;
        let ds = UniformConfig::cube(3, 2500, 71).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::with_sort(3, 2, 5));
        let mut queries = knn_rectangle_queries(&ds, 15, 30, 72);
        let mut empty = RangeQuery::unbounded(3);
        empty.constrain(0, 2.0, 1.0);
        queries.push(empty);
        let mut miss = RangeQuery::unbounded(3);
        miss.constrain(1, 50.0, 60.0); // data lives in [0, 1]
        queries.push(miss);
        for q in &queries {
            let mut expected = Vec::new();
            let expected_stats = grid.range_query_stats(q, &mut expected);
            // Chunked consumption: every chunk comes from one cell, and
            // the cursor never visits more cells than the materialized
            // scan did.
            let mut cursor = grid.range_query_cursor(q);
            let mut ids = Vec::new();
            while let Some(chunk) = cursor.next_chunk() {
                assert!(!chunk.is_empty());
                ids.extend_from_slice(chunk);
            }
            assert_eq!(ids, expected, "ids diverged on {q:?}");
            assert_eq!(cursor.stats(), expected_stats, "stats diverged on {q:?}");
        }
    }

    #[test]
    fn cursor_first_chunk_costs_one_populated_cell() {
        let ds = UniformConfig::cube(2, 4000, 73).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::all_dims(2, 8));
        let q = RangeQuery::unbounded(2);
        let full = grid.range_query_stats(&q, &mut Vec::new());
        let mut cursor = grid.range_query_cursor(&q);
        let first = cursor.next_chunk().expect("unbounded query has matches");
        assert!(!first.is_empty());
        // The streaming win: the first chunk arrives having examined at
        // most one cell's rows, not the whole structure.
        assert_eq!(cursor.stats().cells_visited, 1);
        assert!(cursor.stats().rows_examined < full.rows_examined);
        let (_, stats) = cursor.collect_with_stats();
        assert_eq!(stats, full);
    }

    #[test]
    fn memory_overhead_counts_directory_only() {
        let ds = UniformConfig::cube(2, 500, 8).generate();
        let grid = GridFile::build(&ds, &GridFileConfig::all_dims(2, 4));
        // 2 dims × 5 boundaries × 8 bytes + (16+1) offsets × 4 bytes.
        assert_eq!(grid.memory_overhead(), 2 * 5 * 8 + 17 * 4);
    }

    #[test]
    fn empty_dataset_builds_and_queries() {
        let ds = Dataset::new(vec![vec![], vec![]]);
        let grid = GridFile::build(&ds, &GridFileConfig::all_dims(2, 3));
        assert!(grid.is_empty());
        assert!(grid.range_query(&RangeQuery::unbounded(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not also be gridded")]
    fn sort_dim_cannot_be_gridded() {
        let ds = UniformConfig::cube(2, 10, 9).generate();
        GridFile::build(&ds, &GridFileConfig::subset(vec![0, 1], Some(1), 2));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn grid_dims_must_be_sorted() {
        let ds = UniformConfig::cube(3, 10, 9).generate();
        GridFile::build(&ds, &GridFileConfig::subset(vec![2, 0], None, 2));
    }
}
