//! The backend factory: build any substrate index from a config value.
//!
//! [`BackendSpec`] is the composition seam the paper's "works with any
//! multidimensional index structure" claim needs in code: everything that
//! consumes an index — the COAX outlier store, the bench harness, the
//! equivalence tests — constructs it from a spec and drives it through
//! `Box<dyn MultidimIndex>`, never through a concrete type. Adding a new
//! substrate means adding one variant (and one `build` arm) here; every
//! caller picks it up for free.

use crate::column_files::ColumnFiles;
use crate::full_scan::FullScan;
use crate::grid_file::{GridFile, GridFileConfig};
use crate::pages::MAX_CELLS;
use crate::rtree::{RTree, RTreeConfig};
use crate::traits::MultidimIndex;
use crate::uniform_grid::UniformGrid;
use coax_data::Dataset;

/// A buildable description of one substrate index.
///
/// `Copy` on purpose: specs are cheap values that travel through configs
/// (e.g. [`OutlierBackend::Custom`]), sweep ladders, and reports.
///
/// [`OutlierBackend::Custom`]: https://docs.rs/coax-core
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendSpec {
    /// The check-every-row baseline.
    FullScan,
    /// Equal-width ("full") grid over every attribute.
    UniformGrid {
        /// Cells per attribute.
        cells_per_dim: usize,
    },
    /// Quantile grid file over every attribute, optionally replacing one
    /// attribute's grid lines with an in-cell sort.
    GridFile {
        /// Cells per gridded attribute.
        cells_per_dim: usize,
        /// Attribute sorted inside cells instead of gridded, if any.
        sort_dim: Option<usize>,
    },
    /// Column files: grid file over all attributes but one, the remaining
    /// attribute sorted inside each cell.
    ColumnFiles {
        /// Cells per gridded attribute.
        cells_per_dim: usize,
        /// The sorted attribute; `None` picks it automatically (highest
        /// distinct-value count in a sample).
        sort_dim: Option<usize>,
    },
    /// STR bulk-loaded R-tree with uniform node capacity.
    RTree {
        /// Leaf and internal node capacity.
        capacity: usize,
    },
}

impl BackendSpec {
    /// Builds the described index over `dataset`, boxed behind the
    /// common trait. This is the only place in the workspace that maps
    /// spec variants to concrete substrate types.
    pub fn build(&self, dataset: &Dataset) -> Box<dyn MultidimIndex> {
        match *self {
            BackendSpec::FullScan => Box::new(FullScan::build(dataset)),
            BackendSpec::UniformGrid { cells_per_dim } => {
                Box::new(UniformGrid::build(dataset, cells_per_dim))
            }
            BackendSpec::GridFile { cells_per_dim, sort_dim } => {
                let dims = dataset.dims();
                let config = match sort_dim {
                    Some(sd) => GridFileConfig::with_sort(dims, sd, cells_per_dim),
                    None => GridFileConfig::all_dims(dims, cells_per_dim),
                };
                Box::new(GridFile::build(dataset, &config))
            }
            BackendSpec::ColumnFiles { cells_per_dim, sort_dim } => match sort_dim {
                Some(sd) => Box::new(ColumnFiles::build(dataset, sd, cells_per_dim)),
                None => Box::new(ColumnFiles::build_auto(dataset, cells_per_dim)),
            },
            BackendSpec::RTree { capacity } => {
                Box::new(RTree::build(dataset, RTreeConfig::uniform(capacity)))
            }
        }
    }

    /// The [`MultidimIndex::name`] the built index will report.
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::FullScan => "full-scan",
            BackendSpec::UniformGrid { .. } => "full-grid",
            BackendSpec::GridFile { .. } => "grid-file",
            BackendSpec::ColumnFiles { .. } => "column-files",
            BackendSpec::RTree { .. } => "r-tree",
        }
    }

    /// Short configuration label for sweep tables ("k=8", "cap=12", …).
    pub fn label(&self) -> String {
        match self {
            BackendSpec::FullScan => "scan".to_string(),
            BackendSpec::UniformGrid { cells_per_dim }
            | BackendSpec::GridFile { cells_per_dim, .. }
            | BackendSpec::ColumnFiles { cells_per_dim, .. } => format!("k={cells_per_dim}"),
            BackendSpec::RTree { capacity } => format!("cap={capacity}"),
        }
    }

    /// Whether building over a `dims`-dimensional dataset stays inside
    /// every builder precondition (positive resolution, node capacity
    /// ≥ 2, directory under the 2²⁸-cell cap). Sweeps call this up front
    /// to skip configurations instead of panicking.
    pub fn fits(&self, dims: usize) -> bool {
        let cells_ok = |k: usize, grid_dims: usize| {
            k > 0 && k.checked_pow(grid_dims as u32).is_some_and(|c| c <= MAX_CELLS)
        };
        match *self {
            BackendSpec::FullScan => true,
            BackendSpec::UniformGrid { cells_per_dim } => cells_ok(cells_per_dim, dims),
            BackendSpec::GridFile { cells_per_dim, sort_dim } => {
                sort_dim.is_none_or(|sd| sd < dims)
                    && cells_ok(cells_per_dim, dims - usize::from(sort_dim.is_some()))
            }
            BackendSpec::ColumnFiles { cells_per_dim, sort_dim } => {
                dims > 0
                    && sort_dim.is_none_or(|sd| sd < dims)
                    && cells_ok(cells_per_dim, dims.saturating_sub(1))
            }
            BackendSpec::RTree { capacity } => capacity >= 2,
        }
    }

    /// One spec of every substrate kind at a modest default resolution —
    /// the "all backends" list the equivalence tests and examples iterate.
    pub fn all_kinds(cells_per_dim: usize, capacity: usize) -> Vec<BackendSpec> {
        vec![
            BackendSpec::FullScan,
            BackendSpec::UniformGrid { cells_per_dim },
            BackendSpec::GridFile { cells_per_dim, sort_dim: None },
            BackendSpec::ColumnFiles { cells_per_dim, sort_dim: None },
            BackendSpec::RTree { capacity },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coax_data::RangeQuery;

    fn dataset() -> Dataset {
        Dataset::new(vec![
            (0..200).map(|i| (i % 37) as f64).collect(),
            (0..200).map(|i| i as f64 / 3.0).collect(),
        ])
    }

    #[test]
    fn factory_builds_every_kind() {
        let ds = dataset();
        for spec in BackendSpec::all_kinds(4, 8) {
            let index = spec.build(&ds);
            assert_eq!(index.name(), spec.name(), "{spec:?}");
            assert_eq!(index.len(), 200);
            assert_eq!(index.dims(), 2);
            let hits = index.range_query(&RangeQuery::unbounded(2));
            assert_eq!(hits.len(), 200, "{spec:?} must return every row");
        }
    }

    #[test]
    fn explicit_sort_dims_are_honoured() {
        let ds = dataset();
        let gf = BackendSpec::GridFile { cells_per_dim: 3, sort_dim: Some(1) }.build(&ds);
        let cf = BackendSpec::ColumnFiles { cells_per_dim: 3, sort_dim: Some(0) }.build(&ds);
        let q = RangeQuery::point(&[5.0, 5.0 / 3.0 + 37.0 / 3.0]);
        assert_eq!(gf.range_query(&q), cf.range_query(&q));
    }

    #[test]
    fn fits_rejects_oversized_and_invalid_configs() {
        assert!(BackendSpec::UniformGrid { cells_per_dim: 4 }.fits(8));
        assert!(!BackendSpec::UniformGrid { cells_per_dim: 128 }.fits(8));
        assert!(!BackendSpec::UniformGrid { cells_per_dim: 0 }.fits(2));
        assert!(BackendSpec::GridFile { cells_per_dim: 128, sort_dim: Some(0) }.fits(4));
        assert!(!BackendSpec::GridFile { cells_per_dim: 128, sort_dim: Some(9) }.fits(4));
        assert!(BackendSpec::ColumnFiles { cells_per_dim: 128, sort_dim: None }.fits(4));
        assert!(!BackendSpec::RTree { capacity: 1 }.fits(2));
        assert!(BackendSpec::RTree { capacity: 2 }.fits(2));
        assert!(BackendSpec::FullScan.fits(1));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BackendSpec::UniformGrid { cells_per_dim: 8 }.label(), "k=8");
        assert_eq!(BackendSpec::RTree { capacity: 12 }.label(), "cap=12");
        assert_eq!(BackendSpec::FullScan.label(), "scan");
    }
}
