//! Upward-facing observability hooks for the index substrates.
//!
//! `coax-index` sits *below* `coax-core` in the dependency graph, so it
//! cannot record into `coax_core::obs` directly. Instead the hot paths
//! feed a pair of process-global relaxed atomics here, gated behind an
//! enable flag that the core observability layer flips on when a
//! recorder is built; the core layer folds the totals into its metric
//! snapshots (`coax.grid.shared_cells_scanned` /
//! `coax.grid.shared_cell_visits`). When no recorder has ever been
//! enabled the cost on the shared-probe path is one relaxed load and a
//! branch per *batch* — far below measurement noise — and the counters
//! never influence results.
//!
//! The [`kernel_span!`](crate::kernel_span) macro is the same idea for the scan kernel: an
//! instrumentation point that compiles to nothing, so the tile loops
//! carry zero observability overhead while still marking where a future
//! recorder (or an `--features kernel-trace` build) would attach.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SHARED_CELLS_SCANNED: AtomicU64 = AtomicU64::new(0);
static SHARED_CELL_VISITS: AtomicU64 = AtomicU64::new(0);

/// Turns the telemetry counters on (called by the core observability
/// layer when an enabled recorder is constructed). Never turned back
/// off: a process that observed once keeps counting, which keeps the
/// totals monotone as counters require.
pub fn set_enabled(on: bool) {
    if on {
        ENABLED.store(true, Ordering::Relaxed);
    }
}

/// `true` when some recorder has enabled telemetry.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Feeds one shared-probe batch's [`crate::SharedProbeStats`]: how many
/// distinct cells were swept vs. how many per-probe visits they stood
/// in for. No-op until [`set_enabled`].
pub fn record_shared_probe(cells_scanned: usize, cell_visits: usize) {
    if enabled() {
        SHARED_CELLS_SCANNED.fetch_add(cells_scanned as u64, Ordering::Relaxed);
        SHARED_CELL_VISITS.fetch_add(cell_visits as u64, Ordering::Relaxed);
    }
}

/// Cumulative `(cells_scanned, cell_visits)` totals since process
/// start. `cell_visits − cells_scanned` is the directory work the
/// batch engine deduplicated away.
pub fn shared_probe_totals() -> (u64, u64) {
    (SHARED_CELLS_SCANNED.load(Ordering::Relaxed), SHARED_CELL_VISITS.load(Ordering::Relaxed))
}

/// A compile-to-nothing span marker for the scan kernel's hot loops.
///
/// The kernel's tile loops are the innermost code in the system; even a
/// disabled-recorder branch is unwelcome there. This macro accepts an
/// arbitrary label token-tree and expands to nothing, so the
/// instrumentation points are part of the source (and a tracing build
/// can redefine them) while the release binary is bit-for-bit free of
/// them.
#[macro_export]
macro_rules! kernel_span {
    ($($label:tt)*) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_then_sticky() {
        // Note: other tests in the process may have enabled telemetry
        // already; only assert the monotone/sticky behaviour.
        set_enabled(true);
        assert!(enabled());
        let (scanned0, visits0) = shared_probe_totals();
        record_shared_probe(3, 7);
        let (scanned1, visits1) = shared_probe_totals();
        assert!(scanned1 >= scanned0 + 3);
        assert!(visits1 >= visits0 + 7);
        // Turning "off" is a no-op; totals stay monotone.
        set_enabled(false);
        assert!(enabled());
    }

    #[test]
    fn kernel_span_expands_to_nothing() {
        kernel_span!(unit_test_label);
        kernel_span!("any" tokens 42);
    }
}
