//! Contiguous row-store cell pages shared by the grid-family indexes.
//!
//! Paper §6: *"each cell stores records in a contiguous block of virtual
//! memory in a row store format"*, and rows inside a page may be *"sorted
//! based on a given function similar to the approach proposed in Flood"*,
//! which lets one grid dimension be replaced by binary search.
//!
//! A [`PageStore`] is a CSR-style layout: one flat `data` array of packed
//! rows grouped by cell, one flat `ids` array mapping each packed row back
//! to its dataset row id, and an `offsets` table with one entry per cell
//! boundary.

use coax_data::{Dataset, RangeQuery, RowId, Value};

/// Hard cap on any grid-family directory, shared by every builder and by
/// [`crate::BackendSpec::fits`] so the skip-check and the panic-check can
/// never drift apart: 2²⁸ cells ≈ 1 GiB of offsets.
pub(crate) const MAX_CELLS: usize = 1 << 28;

/// Packed rows grouped into `n_cells` contiguous pages.
#[derive(Clone, Debug)]
pub struct PageStore {
    dims: usize,
    /// `offsets[c]..offsets[c+1]` is the row range of cell `c`.
    offsets: Vec<u32>,
    /// Original dataset row id of each packed row.
    ids: Vec<RowId>,
    /// Row-major packed values, `dims` per row, rows in cell order.
    data: Vec<Value>,
    /// Attribute by which rows inside every cell are sorted, if any.
    sort_dim: Option<usize>,
}

impl PageStore {
    /// Builds a page store by distributing every row of `dataset` into the
    /// cell returned by `cell_of`, optionally sorting rows inside each cell
    /// by attribute `sort_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_of` returns an out-of-range cell or `sort_dim` is
    /// out of range.
    pub fn build(
        dataset: &Dataset,
        n_cells: usize,
        sort_dim: Option<usize>,
        mut cell_of: impl FnMut(RowId) -> usize,
    ) -> Self {
        let dims = dataset.dims();
        if let Some(sd) = sort_dim {
            assert!(sd < dims, "sort dimension out of range");
        }
        let n = dataset.len();

        // Counting sort of rows by cell.
        let mut counts = vec![0u32; n_cells + 1];
        let mut cell_ids = Vec::with_capacity(n);
        for r in dataset.row_ids() {
            let c = cell_of(r);
            assert!(c < n_cells, "cell_of returned {c} >= {n_cells}");
            counts[c + 1] += 1;
            cell_ids.push(c as u32);
        }
        for i in 0..n_cells {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();

        let mut ids = vec![0 as RowId; n];
        let mut cursor = counts;
        for r in dataset.row_ids() {
            let c = cell_ids[r as usize] as usize;
            ids[cursor[c] as usize] = r;
            cursor[c] += 1;
        }

        // Sort inside each cell by the sort dimension, if requested.
        if let Some(sd) = sort_dim {
            let col = dataset.column(sd);
            for c in 0..n_cells {
                let (s, e) = (offsets[c] as usize, offsets[c + 1] as usize);
                ids[s..e].sort_unstable_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .expect("dataset values are finite")
                });
            }
        }

        // Pack row data in final order.
        let mut data = Vec::with_capacity(n * dims);
        for &id in &ids {
            for d in 0..dims {
                data.push(dataset.value(id, d));
            }
        }

        Self { dims, offsets, ids, data, sort_dim }
    }

    /// Number of cells.
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The attribute rows are sorted by inside each cell, if any.
    #[inline]
    pub fn sort_dim(&self) -> Option<usize> {
        self.sort_dim
    }

    /// Number of rows in cell `c`.
    #[inline]
    pub fn cell_len(&self, c: usize) -> usize {
        (self.offsets[c + 1] - self.offsets[c]) as usize
    }

    /// Lengths of every cell (Fig. 4a plots this distribution).
    pub fn cell_lengths(&self) -> Vec<usize> {
        (0..self.n_cells()).map(|c| self.cell_len(c)).collect()
    }

    /// Scans cell `c`, appending ids of rows matching `filter` to `out`.
    /// Returns `(rows_examined, matches)`.
    ///
    /// When the store has a sort dimension and `filter` constrains it, the
    /// scan narrows to the `[lo, hi]` run found by two binary searches
    /// (paper §6: "a scan between two bounding binary searches").
    pub fn scan_cell(
        &self,
        c: usize,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> (usize, usize) {
        self.scan_cell_narrowed(c, filter, filter, out)
    }

    /// Like [`PageStore::scan_cell`] but with separate *navigation* and
    /// *filter* predicates: the binary-search narrowing on the sort
    /// dimension uses `nav` while row acceptance uses `filter`.
    ///
    /// COAX passes its translated (tighter) query as `nav` and the user's
    /// original query as `filter`; plain indexes pass the same query twice.
    /// `nav` must be a sub-rectangle of `filter` on the sort dimension or
    /// results may be silently dropped — callers uphold this.
    pub fn scan_cell_narrowed(
        &self,
        c: usize,
        nav: &RangeQuery,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> (usize, usize) {
        let (s, e) = self.narrowed_run(c, nav);
        let mut examined = 0;
        let mut matched = 0;
        for i in s..e {
            examined += 1;
            let row = &self.data[i * self.dims..(i + 1) * self.dims];
            if filter.matches(row) {
                out.push(self.ids[i]);
                matched += 1;
            }
        }
        (examined, matched)
    }

    /// The packed-row range `[s, e)` a [`PageStore::scan_cell_narrowed`]
    /// call with this `nav` would examine in cell `c`, without scanning
    /// it: the cell's bounds, tightened by the two bounding binary
    /// searches when the store has a sort dimension `nav` constrains.
    ///
    /// Batched probes use this to compute every probe's exact run up
    /// front and then sweep each shared cell once
    /// ([`crate::GridFile::batch_range_query_filtered_shared`]); the per-probe
    /// `rows_examined` counter is `e − s` by construction, identical to
    /// the sequential scan.
    pub fn narrowed_run(&self, c: usize, nav: &RangeQuery) -> (usize, usize) {
        let (mut s, mut e) = (self.offsets[c] as usize, self.offsets[c + 1] as usize);
        if s == e {
            return (s, s);
        }
        if let Some(sd) = self.sort_dim {
            let lo = nav.lo(sd);
            let hi = nav.hi(sd);
            if lo > f64::NEG_INFINITY {
                s += self.partition_rows(s, e, |v| v < lo, sd);
            }
            if hi < f64::INFINITY {
                let len = e - s;
                let keep = self.partition_rows(s, e, |v| v <= hi, sd);
                e = s + keep.min(len);
            }
        }
        (s, e)
    }

    /// The packed values of slot `i` (a global packed-row position as
    /// returned in a [`PageStore::narrowed_run`] range, *not* a dataset
    /// row id).
    #[inline]
    pub fn packed_row(&self, i: usize) -> &[Value] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// The dataset row id stored in packed slot `i`.
    #[inline]
    pub fn packed_id(&self, i: usize) -> RowId {
        self.ids[i]
    }

    /// `partition_point` over packed rows `[s, e)` keyed by dimension `sd`.
    fn partition_rows(
        &self,
        s: usize,
        e: usize,
        mut pred: impl FnMut(Value) -> bool,
        sd: usize,
    ) -> usize {
        let mut lo = 0usize;
        let mut hi = e - s;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let v = self.data[(s + mid) * self.dims + sd];
            if pred(v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Directory overhead contributed by the offsets table, in bytes.
    pub fn offsets_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Bytes of stored row payloads + id map (data, not directory).
    pub fn data_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Value>()
            + self.ids.len() * std::mem::size_of::<RowId>()
    }

    /// Iterates `(dataset_row_id, packed_row)` pairs of cell `c`.
    pub fn cell_entries(&self, c: usize) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        let (s, e) = (self.offsets[c] as usize, self.offsets[c + 1] as usize);
        (s..e).map(move |i| (self.ids[i], &self.data[i * self.dims..(i + 1) * self.dims]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // 6 rows, 2 dims; cell = floor(x) so cells 0,1,2.
        Dataset::new(vec![
            vec![0.5, 1.5, 0.1, 2.9, 1.1, 0.9],
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        ])
    }

    fn by_floor(ds: &Dataset) -> PageStore {
        PageStore::build(ds, 3, None, |r| ds.value(r, 0) as usize)
    }

    #[test]
    fn build_distributes_rows() {
        let ds = dataset();
        let ps = by_floor(&ds);
        assert_eq!(ps.n_cells(), 3);
        assert_eq!(ps.len(), 6);
        assert_eq!(ps.cell_len(0), 3); // rows 0, 2, 5
        assert_eq!(ps.cell_len(1), 2); // rows 1, 4
        assert_eq!(ps.cell_len(2), 1); // row 3
        assert_eq!(ps.cell_lengths(), vec![3, 2, 1]);
    }

    #[test]
    fn cell_entries_round_trip() {
        let ds = dataset();
        let ps = by_floor(&ds);
        let mut ids: Vec<RowId> = ps.cell_entries(0).map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2, 5]);
        for (id, row) in ps.cell_entries(1) {
            assert_eq!(row, ds.row(id).as_slice());
        }
    }

    #[test]
    fn scan_cell_filters_exactly() {
        let ds = dataset();
        let ps = by_floor(&ds);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 25.0, 65.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!(examined, 3);
        assert_eq!(matched, 2); // rows 2 (y=30) and 5 (y=60)
        out.sort_unstable();
        assert_eq!(out, vec![2, 5]);
    }

    #[test]
    fn sorted_cells_narrow_the_scan() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        // All six rows in one cell, sorted by y = 10..60.
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 25.0, 45.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!(examined, 2, "binary search should narrow scan to [30, 40]");
        assert_eq!(matched, 2);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn sorted_scan_handles_open_bounds() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, f64::NEG_INFINITY, 15.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!((examined, matched), (1, 1));
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn sorted_scan_empty_range() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        // (40, 50) exclusive of both stored neighbours: nothing qualifies
        // and the two binary searches collapse the scan to zero rows.
        q.constrain(1, 41.0, 49.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!((examined, matched), (0, 0));
        assert!(out.is_empty());
    }

    #[test]
    fn empty_store() {
        let ds = Dataset::new(vec![vec![], vec![]]);
        let ps = PageStore::build(&ds, 4, Some(0), |_| 0);
        assert!(ps.is_empty());
        assert_eq!(ps.n_cells(), 4);
        let mut out = Vec::new();
        assert_eq!(ps.scan_cell(2, &RangeQuery::unbounded(2), &mut out), (0, 0));
    }

    #[test]
    fn duplicate_sort_keys_are_all_found() {
        let ds = Dataset::new(vec![vec![1.0; 5], vec![7.0, 7.0, 7.0, 1.0, 9.0]]);
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 7.0, 7.0);
        let mut out = Vec::new();
        let (_, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!(matched, 3);
    }

    #[test]
    fn memory_accounting() {
        let ds = dataset();
        let ps = by_floor(&ds);
        assert_eq!(ps.offsets_bytes(), 4 * 4);
        assert_eq!(ps.data_bytes(), 6 * 2 * 8 + 6 * 4);
    }
}
