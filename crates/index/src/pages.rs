//! Contiguous columnar cell pages shared by the grid-family indexes.
//!
//! Paper §6: *"each cell stores records in a contiguous block of virtual
//! memory"*, and rows inside a page may be *"sorted based on a given
//! function similar to the approach proposed in Flood"*, which lets one
//! grid dimension be replaced by binary search.
//!
//! A [`PageStore`] is a CSR-style layout with **columnar-within-cell**
//! pages: one `offsets` table with one entry per cell boundary, one flat
//! `ids` array mapping each packed row back to its dataset row id, and —
//! instead of row-major packed rows — one flat slab *per dimension*, all
//! sharing the same packed order. `cols[d][offsets[c]..offsets[c + 1]]`
//! is cell `c`'s dimension-`d` values as one contiguous `&[f64]` run, so
//! the scan kernel ([`crate::kernel`]) can evaluate a rectangle one
//! dimension at a time over dense slices, and the sort-dimension binary
//! search is a plain `partition_point` on the sort column's slab.
//!
//! Scans run the vectorized kernel by default and the scalar reference
//! path when [`crate::kernel::force_scalar`] is engaged; the two are
//! bit-identical (ids, order, counters) by contract.

use crate::kernel;
use coax_data::{Dataset, RangeQuery, RowId, Value};

/// Hard cap on any grid-family directory, shared by every builder and by
/// [`crate::BackendSpec::fits`] so the skip-check and the panic-check can
/// never drift apart: 2²⁸ cells ≈ 1 GiB of offsets.
pub(crate) const MAX_CELLS: usize = 1 << 28;

/// Packed rows grouped into `n_cells` contiguous pages, stored as
/// per-dimension column slabs in a shared packed order.
#[derive(Clone, Debug)]
pub struct PageStore {
    dims: usize,
    /// `offsets[c]..offsets[c+1]` is the packed-row range of cell `c`.
    offsets: Vec<u32>,
    /// Original dataset row id of each packed row.
    ids: Vec<RowId>,
    /// One value slab per dimension: `cols[d][i]` is dimension `d` of
    /// packed row `i`. Every slab shares the packed order, so a cell's
    /// values for one dimension are a contiguous run.
    cols: Vec<Vec<Value>>,
    /// Attribute by which rows inside every cell are sorted, if any.
    sort_dim: Option<usize>,
}

impl PageStore {
    /// Builds a page store by distributing every row of `dataset` into the
    /// cell returned by `cell_of`, optionally sorting rows inside each cell
    /// by attribute `sort_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_of` returns an out-of-range cell or `sort_dim` is
    /// out of range.
    pub fn build(
        dataset: &Dataset,
        n_cells: usize,
        sort_dim: Option<usize>,
        mut cell_of: impl FnMut(RowId) -> usize,
    ) -> Self {
        let dims = dataset.dims();
        if let Some(sd) = sort_dim {
            assert!(sd < dims, "sort dimension out of range");
        }
        let n = dataset.len();

        // Counting sort of rows by cell.
        let mut counts = vec![0u32; n_cells + 1];
        let mut cell_ids = Vec::with_capacity(n);
        for r in dataset.row_ids() {
            let c = cell_of(r);
            assert!(c < n_cells, "cell_of returned {c} >= {n_cells}");
            counts[c + 1] += 1;
            cell_ids.push(c as u32);
        }
        for i in 0..n_cells {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();

        let mut ids = vec![0 as RowId; n];
        let mut cursor = counts;
        for r in dataset.row_ids() {
            let c = cell_ids[r as usize] as usize;
            ids[cursor[c] as usize] = r;
            cursor[c] += 1;
        }

        // Sort inside each cell by the sort dimension, if requested.
        if let Some(sd) = sort_dim {
            let col = dataset.column(sd);
            for c in 0..n_cells {
                let (s, e) = (offsets[c] as usize, offsets[c + 1] as usize);
                ids[s..e]
                    .sort_unstable_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
            }
        }

        // Gather each dimension's slab in the final packed order.
        let cols = (0..dims)
            .map(|d| {
                let src = dataset.column(d);
                ids.iter().map(|&id| src[id as usize]).collect()
            })
            .collect();

        Self { dims, offsets, ids, cols, sort_dim }
    }

    /// Number of cells.
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The attribute rows are sorted by inside each cell, if any.
    #[inline]
    pub fn sort_dim(&self) -> Option<usize> {
        self.sort_dim
    }

    /// Number of rows in cell `c`.
    #[inline]
    pub fn cell_len(&self, c: usize) -> usize {
        (self.offsets[c + 1] - self.offsets[c]) as usize
    }

    /// The packed-row bounds `[start, end)` of cell `c`.
    #[inline]
    pub fn cell_run(&self, c: usize) -> (usize, usize) {
        (self.offsets[c] as usize, self.offsets[c + 1] as usize)
    }

    /// Lengths of every cell (Fig. 4a plots this distribution).
    pub fn cell_lengths(&self) -> Vec<usize> {
        (0..self.n_cells()).map(|c| self.cell_len(c)).collect()
    }

    /// The per-dimension column slabs (shared packed order).
    #[inline]
    pub fn columns(&self) -> &[Vec<Value>] {
        &self.cols
    }

    /// The packed-order id map (`packed slot → dataset row id`).
    #[inline]
    pub fn packed_ids(&self) -> &[RowId] {
        &self.ids
    }

    /// Scans cell `c`, appending ids of rows matching `filter` to `out`.
    /// Returns `(rows_examined, matches)`.
    ///
    /// When the store has a sort dimension and `filter` constrains it, the
    /// scan narrows to the `[lo, hi]` run found by two binary searches
    /// (paper §6: "a scan between two bounding binary searches").
    pub fn scan_cell(
        &self,
        c: usize,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> (usize, usize) {
        self.scan_cell_narrowed(c, filter, filter, out)
    }

    /// Like [`PageStore::scan_cell`] but with separate *navigation* and
    /// *filter* predicates: the binary-search narrowing on the sort
    /// dimension uses `nav` while row acceptance uses `filter`.
    ///
    /// COAX passes its translated (tighter) query as `nav` and the user's
    /// original query as `filter`; plain indexes pass the same query twice.
    /// `nav` must be a sub-rectangle of `filter` on the sort dimension or
    /// results may be silently dropped — callers uphold this.
    ///
    /// Runs the vectorized columnar kernel unless the scalar reference
    /// path is forced ([`crate::kernel::force_scalar`]); both emit
    /// identical ids in identical (ascending packed) order with identical
    /// counters.
    pub fn scan_cell_narrowed(
        &self,
        c: usize,
        nav: &RangeQuery,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> (usize, usize) {
        let (s, e) = self.narrowed_run(c, nav);
        let matched = if kernel::scalar_forced() {
            self.scan_run_scalar(s, e, filter, out)
        } else {
            kernel::scan_columnar(&self.cols, &self.ids, s, e, filter, out)
        };
        (e - s, matched)
    }

    /// The scalar reference scan: identical contract and results as
    /// [`PageStore::scan_cell_narrowed`], but testing rows one at a time
    /// against the whole rectangle. Kept callable directly so the
    /// differential suite and `bench --bin scan` can A/B the paths without
    /// touching the process-wide flag.
    pub fn scan_cell_narrowed_scalar(
        &self,
        c: usize,
        nav: &RangeQuery,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> (usize, usize) {
        let (s, e) = self.narrowed_run(c, nav);
        (e - s, self.scan_run_scalar(s, e, filter, out))
    }

    /// Row-at-a-time scan of packed rows `[s, e)`: the reference the
    /// kernel must stay bit-identical to.
    pub(crate) fn scan_run_scalar(
        &self,
        s: usize,
        e: usize,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> usize {
        let mut matched = 0;
        for i in s..e {
            let ok = filter
                .lows()
                .iter()
                .zip(filter.highs())
                .zip(&self.cols)
                .all(|((l, h), col)| *l <= col[i] && col[i] <= *h);
            if ok {
                out.push(self.ids[i]);
                matched += 1;
            }
        }
        matched
    }

    /// Scans the packed-row run `[s, e)` through a caller-held
    /// [`kernel::CellMaskCache`], pushing matching row ids and returning
    /// the match count.
    ///
    /// This is the batched counterpart of the scalar per-run scan:
    /// probes whose filters are value-equal share one cache, so the
    /// first of them computes each 64-row tile's per-dimension selection
    /// masks and the rest only trim and gather. Keeping this entry point
    /// on `PageStore` means callers never touch the column slabs — the
    /// scalar/vector bit-identity contract stays auditable inside
    /// kernel.rs/pages.rs.
    pub fn scan_run_cached(
        &self,
        cache: &mut kernel::CellMaskCache,
        s: usize,
        e: usize,
        filter: &RangeQuery,
        out: &mut Vec<RowId>,
    ) -> usize {
        cache.scan(&self.cols, &self.ids, filter, s, e, out)
    }

    /// The packed-row range `[s, e)` a [`PageStore::scan_cell_narrowed`]
    /// call with this `nav` would examine in cell `c`, without scanning
    /// it: the cell's bounds, tightened by the two bounding binary
    /// searches when the store has a sort dimension `nav` constrains.
    ///
    /// Batched probes use this to compute every probe's exact run up
    /// front and then sweep each shared cell once
    /// ([`crate::GridFile::batch_range_query_filtered_shared`]); the per-probe
    /// `rows_examined` counter is `e − s` by construction, identical to
    /// the sequential scan.
    pub fn narrowed_run(&self, c: usize, nav: &RangeQuery) -> (usize, usize) {
        let (mut s, mut e) = (self.offsets[c] as usize, self.offsets[c + 1] as usize);
        if s == e {
            return (s, s);
        }
        if let Some(sd) = self.sort_dim {
            // The sort column's slab is sorted within the cell, so both
            // bounding searches are plain `partition_point`s on it.
            let col = &self.cols[sd];
            let lo = nav.lo(sd);
            let hi = nav.hi(sd);
            if lo > f64::NEG_INFINITY {
                s += col[s..e].partition_point(|&v| v < lo);
            }
            if hi < f64::INFINITY {
                e = s + col[s..e].partition_point(|&v| v <= hi);
            }
        }
        (s, e)
    }

    /// The dataset row id stored in packed slot `i` (a global packed-row
    /// position as returned in a [`PageStore::narrowed_run`] range, *not*
    /// a dataset row id).
    #[inline]
    pub fn packed_id(&self, i: usize) -> RowId {
        self.ids[i]
    }

    /// Directory overhead contributed by the offsets table, in bytes.
    pub fn offsets_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Bytes of stored row payloads + id map (data, not directory).
    pub fn data_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.len() * std::mem::size_of::<Value>()).sum::<usize>()
            + self.ids.len() * std::mem::size_of::<RowId>()
    }

    /// Invokes `f` with every `(dataset_row_id, row_values)` pair of cell
    /// `c` in packed order, gathering each row from the column slabs into
    /// `scratch` (resized to `dims`; the slice passed to `f` is only valid
    /// for that call).
    pub fn for_each_cell_entry(
        &self,
        c: usize,
        scratch: &mut Vec<Value>,
        f: &mut dyn FnMut(RowId, &[Value]),
    ) {
        scratch.resize(self.dims, 0.0);
        let (s, e) = self.cell_run(c);
        for i in s..e {
            for (d, col) in self.cols.iter().enumerate() {
                scratch[d] = col[i];
            }
            f(self.ids[i], scratch);
        }
    }

    /// Invokes `f` with every stored `(dataset_row_id, row_values)` pair,
    /// cells in order and packed order within each cell — the rebuild /
    /// fold traversal of the grid-family indexes.
    pub fn for_each_entry(&self, f: &mut dyn FnMut(RowId, &[Value])) {
        let mut scratch = Vec::with_capacity(self.dims);
        for c in 0..self.n_cells() {
            self.for_each_cell_entry(c, &mut scratch, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // 6 rows, 2 dims; cell = floor(x) so cells 0,1,2.
        Dataset::new(vec![
            vec![0.5, 1.5, 0.1, 2.9, 1.1, 0.9],
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        ])
    }

    fn by_floor(ds: &Dataset) -> PageStore {
        PageStore::build(ds, 3, None, |r| ds.value(r, 0) as usize)
    }

    fn cell_entries(ps: &PageStore, c: usize) -> Vec<(RowId, Vec<Value>)> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        ps.for_each_cell_entry(c, &mut scratch, &mut |id, row| out.push((id, row.to_vec())));
        out
    }

    #[test]
    fn build_distributes_rows() {
        let ds = dataset();
        let ps = by_floor(&ds);
        assert_eq!(ps.n_cells(), 3);
        assert_eq!(ps.len(), 6);
        assert_eq!(ps.cell_len(0), 3); // rows 0, 2, 5
        assert_eq!(ps.cell_len(1), 2); // rows 1, 4
        assert_eq!(ps.cell_len(2), 1); // row 3
        assert_eq!(ps.cell_lengths(), vec![3, 2, 1]);
    }

    #[test]
    fn columns_are_per_cell_contiguous_slabs() {
        let ds = dataset();
        let ps = by_floor(&ds);
        assert_eq!(ps.columns().len(), 2);
        let (s, e) = ps.cell_run(1);
        // Cell 1 holds rows 1 and 4 in packed order; dimension 1's slab
        // for the cell is exactly their y values, contiguous.
        assert_eq!(&ps.columns()[1][s..e], &[20.0, 50.0]);
    }

    #[test]
    fn cell_entries_round_trip() {
        let ds = dataset();
        let ps = by_floor(&ds);
        let mut ids: Vec<RowId> = cell_entries(&ps, 0).into_iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2, 5]);
        for (id, row) in cell_entries(&ps, 1) {
            assert_eq!(row, ds.row(id));
        }
    }

    #[test]
    fn for_each_entry_visits_every_row_once() {
        let ds = dataset();
        let ps = by_floor(&ds);
        let mut seen = Vec::new();
        ps.for_each_entry(&mut |id, row| {
            assert_eq!(row, ds.row(id).as_slice());
            seen.push(id);
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn scan_cell_filters_exactly() {
        let ds = dataset();
        let ps = by_floor(&ds);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 25.0, 65.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!(examined, 3);
        assert_eq!(matched, 2); // rows 2 (y=30) and 5 (y=60)
        out.sort_unstable();
        assert_eq!(out, vec![2, 5]);
    }

    #[test]
    fn sorted_cells_narrow_the_scan() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        // All six rows in one cell, sorted by y = 10..60.
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 25.0, 45.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!(examined, 2, "binary search should narrow scan to [30, 40]");
        assert_eq!(matched, 2);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn sorted_scan_handles_open_bounds() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, f64::NEG_INFINITY, 15.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!((examined, matched), (1, 1));
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn sorted_scan_empty_range() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        // (40, 50) exclusive of both stored neighbours: nothing qualifies
        // and the two binary searches collapse the scan to zero rows.
        q.constrain(1, 41.0, 49.0);
        let mut out = Vec::new();
        let (examined, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!((examined, matched), (0, 0));
        assert!(out.is_empty());
    }

    #[test]
    fn empty_store() {
        let ds = Dataset::new(vec![vec![], vec![]]);
        let ps = PageStore::build(&ds, 4, Some(0), |_| 0);
        assert!(ps.is_empty());
        assert_eq!(ps.n_cells(), 4);
        let mut out = Vec::new();
        assert_eq!(ps.scan_cell(2, &RangeQuery::unbounded(2), &mut out), (0, 0));
    }

    #[test]
    fn duplicate_sort_keys_are_all_found() {
        let ds = Dataset::new(vec![vec![1.0; 5], vec![7.0, 7.0, 7.0, 1.0, 9.0]]);
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(1, 7.0, 7.0);
        let mut out = Vec::new();
        let (_, matched) = ps.scan_cell(0, &q, &mut out);
        assert_eq!(matched, 3);
    }

    #[test]
    fn scalar_reference_is_bit_identical_here() {
        let ds = dataset();
        let ps = PageStore::build(&ds, 1, Some(1), |_| 0);
        let mut q = RangeQuery::unbounded(2);
        q.constrain(0, 0.2, 1.6);
        q.constrain(1, 15.0, 55.0);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let sa = ps.scan_cell_narrowed(0, &q, &q, &mut a);
        let sb = ps.scan_cell_narrowed_scalar(0, &q, &q, &mut b);
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    fn memory_accounting() {
        let ds = dataset();
        let ps = by_floor(&ds);
        assert_eq!(ps.offsets_bytes(), 4 * 4);
        assert_eq!(ps.data_bytes(), 6 * 2 * 8 + 6 * 4);
    }
}
