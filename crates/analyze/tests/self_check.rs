//! The workspace's own acceptance gate: `check_workspace` over the live
//! source tree must report zero findings under the full v2 rule set —
//! every rule (per-file and cross-file) is either satisfied or carries
//! an audited, reasoned suppression that still earns its keep (the
//! stale-suppression pass runs here too).

use coax_analyze::{baseline, check_workspace, Finding, Report};
use std::path::Path;

/// The suppression-ledger ceiling. The stale pass guarantees every
/// suppression still silences a finding; this pin guarantees the ledger
/// does not *grow* silently — raising it is a deliberate, reviewed edit
/// of this constant.
const SUPPRESSION_CEILING: usize = 39;

fn live_report() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    check_workspace(&root).expect("workspace walk succeeds")
}

#[test]
fn live_workspace_has_zero_findings() {
    let report = live_report();
    assert!(report.files_scanned > 50, "walk found too few files: {}", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "coax-analyze found {} violation(s) in the live workspace:\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn suppression_ledger_only_shrinks() {
    let report = live_report();
    assert!(
        report.suppressed <= SUPPRESSION_CEILING,
        "the suppression ledger grew: {} suppressed findings (ceiling {SUPPRESSION_CEILING}). \
         Fix the site instead of suppressing it, or raise the ceiling in this test as a \
         reviewed decision.",
        report.suppressed
    );
}

/// The committed baseline contract: writing a baseline from the live
/// report and immediately filtering against it yields nothing new, while
/// a finding outside the baseline survives the filter.
#[test]
fn baseline_round_trips_on_the_live_workspace() {
    let report = live_report();
    let written = baseline::write_baseline(&report);
    let parsed = baseline::parse(&written).expect("self-written baseline parses");
    assert_eq!(parsed.len(), report.findings.len());
    assert!(
        baseline::filter_new(&report.findings, &parsed).is_empty(),
        "a just-written baseline must cover every live finding"
    );
    let synthetic = [Finding {
        file: "crates/core/src/exec.rs".to_string(),
        line: 1,
        rule: "lock-order",
        message: "synthetic finding not in any baseline".to_string(),
    }];
    assert_eq!(
        baseline::filter_new(&synthetic, &parsed).len(),
        1,
        "a finding outside the baseline must survive the filter"
    );
}
