//! The workspace's own acceptance gate: `check_workspace` over the live
//! source tree must report zero findings — every rule is either satisfied
//! or carries an audited, reasoned suppression.

use coax_analyze::check_workspace;
use std::path::Path;

#[test]
fn live_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = check_workspace(&root).expect("workspace walk succeeds");
    assert!(report.files_scanned > 50, "walk found too few files: {}", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "coax-analyze found {} violation(s) in the live workspace:\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
