//! Golden-file tests for the analyzer: each fixture under
//! `tests/fixtures/` is analyzed under a *virtual* workspace path (its
//! first line, `// virtual-path: …`) and the rendered findings are
//! compared against the `.expected` file next to it.
//!
//! Regenerate the goldens after an intentional diagnostic change with
//! `COAX_ANALYZE_BLESS=1 cargo test -p coax-analyze --test fixtures`.

use coax_analyze::analyze_source;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Reads a fixture, returning its declared virtual path and full source.
fn load(name: &str) -> (String, String) {
    let path = fixtures_dir().join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let first = source.lines().next().unwrap_or_default();
    let virtual_path = first
        .strip_prefix("// virtual-path: ")
        .unwrap_or_else(|| panic!("{name}: first line must be `// virtual-path: <path>`"))
        .trim()
        .to_string();
    (virtual_path, source)
}

/// Renders the fixture's findings, one `file:line: rule: message` per
/// line, plus a trailing `suppressed: N` marker (golden files pin the
/// suppression count too, so a silently-ignored suppression fails).
fn render(name: &str) -> String {
    let (virtual_path, source) = load(name);
    let (findings, suppressed) = analyze_source(&virtual_path, &source);
    let mut out = String::new();
    for f in &findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out.push_str(&format!("suppressed: {suppressed}\n"));
    out
}

fn check_golden(name: &str) {
    let actual = render(name);
    let expected_path = fixtures_dir().join(name).with_extension("expected");
    if std::env::var_os("COAX_ANALYZE_BLESS").is_some() {
        fs::write(&expected_path, &actual)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", expected_path.display()));
        return;
    }
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", expected_path.display()));
    assert_eq!(
        actual, expected,
        "fixture {name} diverged from its golden file (COAX_ANALYZE_BLESS=1 regenerates)"
    );
}

macro_rules! golden {
    ($($test:ident => $file:literal),* $(,)?) => {
        $(#[test]
        fn $test() {
            check_golden($file);
        })*
    };
}

golden! {
    panic_free_violating => "panic_free_violating.rs",
    panic_free_clean => "panic_free_clean.rs",
    nan_cmp_violating => "nan_cmp_violating.rs",
    nan_cmp_clean => "nan_cmp_clean.rs",
    kernel_violating => "kernel_violating.rs",
    kernel_clean => "kernel_clean.rs",
    thread_violating => "thread_violating.rs",
    thread_clean => "thread_clean.rs",
    seeded_violating => "seeded_violating.rs",
    seeded_clean => "seeded_clean.rs",
    doc_headers_violating => "doc_headers_violating.rs",
    doc_headers_clean => "doc_headers_clean.rs",
    obs_naming_violating => "obs_naming_violating.rs",
    obs_naming_clean => "obs_naming_clean.rs",
    suppression_honored => "suppression_honored.rs",
    suppression_reason_missing => "suppression_reason_missing.rs",
    suppression_unknown_rule => "suppression_unknown_rule.rs",
}

/// A well-formed suppression removes the finding *and* is counted.
#[test]
fn suppression_honored_counts() {
    let (virtual_path, source) = load("suppression_honored.rs");
    let (findings, suppressed) = analyze_source(&virtual_path, &source);
    assert!(findings.is_empty(), "suppressed finding leaked: {findings:?}");
    assert_eq!(suppressed, 1);
}

/// A reasonless suppression is rejected: it reports itself and does NOT
/// silence the underlying finding.
#[test]
fn reasonless_suppression_rejected() {
    let (virtual_path, source) = load("suppression_reason_missing.rs");
    let (findings, suppressed) = analyze_source(&virtual_path, &source);
    assert_eq!(suppressed, 0);
    assert!(findings.iter().any(|f| f.rule == "suppression"));
    assert!(findings.iter().any(|f| f.rule == "panic-free-library"));
}
