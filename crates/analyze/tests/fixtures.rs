//! Golden-file tests for the analyzer: each fixture under
//! `tests/fixtures/` is analyzed under *virtual* workspace paths and the
//! rendered findings are compared against the `.expected` file next to
//! it.
//!
//! A fixture starts with `// virtual-path: <path>`; additional
//! `// virtual-path:` lines split the file into further virtual files
//! (each section's lines count from 1, including its marker line), so
//! one fixture can exercise the cross-file rules — an impl in one
//! virtual file, its equivalence pin in another.
//!
//! Regenerate the goldens after an intentional diagnostic change with
//! `COAX_ANALYZE_BLESS=1 cargo test -p coax-analyze --test fixtures`.

use coax_analyze::analyze_files;
use coax_analyze::Finding;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Reads a fixture, splitting it into `(virtual path, source)` sections
/// on `// virtual-path:` marker lines.
fn load(name: &str) -> Vec<(String, String)> {
    let path = fixtures_dir().join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in source.lines() {
        if let Some(vp) = line.strip_prefix("// virtual-path: ") {
            sections.push((vp.trim().to_string(), String::new()));
        }
        let Some(last) = sections.last_mut() else {
            panic!("{name}: first line must be `// virtual-path: <path>`")
        };
        last.1.push_str(line);
        last.1.push('\n');
    }
    assert!(!sections.is_empty(), "{name}: empty fixture");
    sections
}

fn analyze(name: &str) -> (Vec<Finding>, usize) {
    analyze_files(&load(name))
}

/// Renders the fixture's findings, one `file:line: rule: message` per
/// line, plus a trailing `suppressed: N` marker (golden files pin the
/// suppression count too, so a silently-ignored suppression fails).
fn render(name: &str) -> String {
    let (findings, suppressed) = analyze(name);
    let mut out = String::new();
    for f in &findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out.push_str(&format!("suppressed: {suppressed}\n"));
    out
}

fn check_golden(name: &str) {
    let actual = render(name);
    let expected_path = fixtures_dir().join(name).with_extension("expected");
    if std::env::var_os("COAX_ANALYZE_BLESS").is_some() {
        fs::write(&expected_path, &actual)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", expected_path.display()));
        return;
    }
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", expected_path.display()));
    assert_eq!(
        actual, expected,
        "fixture {name} diverged from its golden file (COAX_ANALYZE_BLESS=1 regenerates)"
    );
}

macro_rules! golden {
    ($($test:ident => $file:literal),* $(,)?) => {
        $(#[test]
        fn $test() {
            check_golden($file);
        })*
    };
}

golden! {
    panic_free_violating => "panic_free_violating.rs",
    panic_free_clean => "panic_free_clean.rs",
    nan_cmp_violating => "nan_cmp_violating.rs",
    nan_cmp_clean => "nan_cmp_clean.rs",
    kernel_violating => "kernel_violating.rs",
    kernel_clean => "kernel_clean.rs",
    thread_violating => "thread_violating.rs",
    thread_clean => "thread_clean.rs",
    seeded_violating => "seeded_violating.rs",
    seeded_clean => "seeded_clean.rs",
    doc_headers_violating => "doc_headers_violating.rs",
    doc_headers_clean => "doc_headers_clean.rs",
    obs_naming_violating => "obs_naming_violating.rs",
    obs_naming_clean => "obs_naming_clean.rs",
    suppression_honored => "suppression_honored.rs",
    suppression_reason_missing => "suppression_reason_missing.rs",
    suppression_unknown_rule => "suppression_unknown_rule.rs",
    lock_order_violating => "lock_order_violating.rs",
    lock_order_clean => "lock_order_clean.rs",
    guard_scope_violating => "guard_scope_violating.rs",
    guard_scope_clean => "guard_scope_clean.rs",
    stale_suppression => "stale_suppression.rs",
    trait_contract_violating => "trait_contract_violating.rs",
    trait_contract_clean => "trait_contract_clean.rs",
}

/// A well-formed suppression removes the finding *and* is counted.
#[test]
fn suppression_honored_counts() {
    let (findings, suppressed) = analyze("suppression_honored.rs");
    assert!(findings.is_empty(), "suppressed finding leaked: {findings:?}");
    assert_eq!(suppressed, 1);
}

/// A reasonless suppression is rejected: it reports itself and does NOT
/// silence the underlying finding.
#[test]
fn reasonless_suppression_rejected() {
    let (findings, suppressed) = analyze("suppression_reason_missing.rs");
    assert_eq!(suppressed, 0);
    assert!(findings.iter().any(|f| f.rule == "suppression"));
    assert!(findings.iter().any(|f| f.rule == "panic-free-library"));
}

/// The seeded two-lock cycle reports both acquisition chains by name —
/// the reviewer must see both sides of the deadlock to pick which one
/// to reorder.
#[test]
fn lock_order_cycle_names_both_chains() {
    let (findings, _) = analyze("lock_order_violating.rs");
    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order")
        .unwrap_or_else(|| panic!("no lock-order finding: {findings:?}"));
    assert!(cycle.message.contains("`credit`"), "first chain: {}", cycle.message);
    assert!(cycle.message.contains("`reconcile`"), "second chain: {}", cycle.message);
    assert!(cycle.message.contains("`log`"), "the propagated hop: {}", cycle.message);
}

/// Deleting a load-bearing suppression's justification must fail the
/// gate: the reasonless comment reports itself AND the finding it used
/// to silence comes back.
#[test]
fn stripping_a_reason_resurrects_the_finding() {
    let sections: Vec<(String, String)> = load("suppression_honored.rs")
        .into_iter()
        .map(|(p, src)| {
            (p, src.replace(", slice is non-empty by construction in every caller", ""))
        })
        .collect();
    let (findings, suppressed) = analyze_files(&sections);
    assert_eq!(suppressed, 0);
    assert!(findings.iter().any(|f| f.rule == "suppression"), "{findings:?}");
    assert!(findings.iter().any(|f| f.rule == "panic-free-library"), "{findings:?}");
}
