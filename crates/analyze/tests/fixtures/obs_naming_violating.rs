// virtual-path: crates/demo/src/metrics.rs
fn register(reg: &MetricsRegistry, suffix: &str) {
    let _ = reg.counter("CamelCase.Count");
    let _ = reg.gauge("overlay");
    let _ = reg.histogram(&format!("coax.query.{suffix}"));
    let _ = reg.counter("coax.query.9starts_with_digit");
}
