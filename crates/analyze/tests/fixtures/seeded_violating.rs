// virtual-path: crates/demo/tests/random.rs
#[test]
fn randomized() {
    let mut rng = rand::thread_rng();
    let _ = rng.gen_range(0..10);
}
