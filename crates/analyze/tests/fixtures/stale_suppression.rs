// virtual-path: crates/core/src/stale.rs
//! Fixture: a suppression whose rule no longer fires at its site is
//! itself a finding — the ledger only shrinks. A grace comment
//! (`allow(stale-suppression, <why>)`) defers exactly one stale finding.

// coax-analyze: allow(panic-free-library, the unwrap below was replaced by a typed error)
pub fn formerly_panicky() -> u32 {
    42
}

// coax-analyze: allow(stale-suppression, site is deleted by the WAL PR next week)
// coax-analyze: allow(kernel-encapsulation, historical slab access)
pub fn graced() -> u32 {
    7
}
