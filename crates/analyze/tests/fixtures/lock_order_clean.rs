// virtual-path: crates/core/src/pairlocks.rs
//! Fixture: the same two locks as `lock_order_violating.rs`, but every
//! path acquires `accounts` before `audit` — the acquisition graph is
//! acyclic and `lock-order` stays quiet.
use std::sync::Mutex;

pub struct Ledger {
    accounts: Mutex<Vec<u64>>,
    audit: Mutex<Vec<u64>>,
}

impl Ledger {
    pub fn credit(&self, amount: u64) {
        let mut accounts = self.accounts.lock().unwrap_or_else(|p| p.into_inner());
        accounts.push(amount);
        self.log(amount);
        drop(accounts);
    }

    fn log(&self, amount: u64) {
        let mut audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        audit.push(amount);
    }

    pub fn reconcile(&self) -> usize {
        let accounts = self.accounts.lock().unwrap_or_else(|p| p.into_inner());
        let audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        accounts.len() + audit.len()
    }
}
