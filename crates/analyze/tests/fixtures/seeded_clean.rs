// virtual-path: crates/demo/tests/random.rs
#[test]
fn randomized() {
    let mut rng = StdRng::seed_from_u64(42);
    let _ = rng.gen_range(0..10);
}
