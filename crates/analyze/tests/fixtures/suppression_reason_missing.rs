// virtual-path: crates/demo/src/lib.rs
pub fn first(xs: &[u32]) -> u32 {
    // coax-analyze: allow(panic-free-library)
    *xs.first().unwrap()
}
