// virtual-path: crates/demo/src/metrics.rs
fn register(reg: &MetricsRegistry) {
    let _ = reg.counter("coax.query.count");
    let _ = reg.gauge("coax.overlay.rows");
    let _ = reg.histogram("coax.query.latency_us");
    // coax-analyze: allow(obs-naming, migration shim republishes a legacy dashboard name)
    let _ = reg.counter("Legacy.QueryCount");
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_metrics_are_exempt(reg: &MetricsRegistry) {
        let _ = reg.counter("X");
    }
}
