// virtual-path: crates/demo/src/lib.rs
pub fn first(xs: &[u32]) -> u32 {
    // coax-analyze: allow(panic-free-library, slice is non-empty by construction in every caller)
    *xs.first().unwrap()
}
