// virtual-path: crates/core/src/exec.rs
/// Spawns the worker from the exec layer, which owns thread lifecycles.
pub fn fan_out() {
    std::thread::spawn(|| {});
}
