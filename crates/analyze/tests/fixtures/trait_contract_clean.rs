// virtual-path: crates/index/src/toy.rs
//! Fixture: the same override as `trait_contract_violating.rs`, but a
//! second virtual file — an equivalence suite — references the type, so
//! `trait-contract` is satisfied. Exercises the multi-file fixture
//! loader.

pub struct ToyIndex;

impl MultidimIndex for ToyIndex {
    fn batch_query(&self, queries: &[RangeQuery]) -> Vec<QueryResult> {
        queries.iter().map(|_| QueryResult::default()).collect()
    }
}
// virtual-path: crates/index/tests/toy_equivalence.rs
//! The equivalence pin: the suite names `ToyIndex` and sweeps it
//! against the reference.

fn toy_matches_full_scan() {
    let toy = ToyIndex;
    let _ = toy;
}
