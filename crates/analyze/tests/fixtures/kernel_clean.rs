// virtual-path: crates/index/src/pages.rs
pub fn peek(pages: &PageStore) -> usize {
    let slabs = pages.columns();
    let ids = pages.packed_ids();
    slabs.len() + ids.len()
}
