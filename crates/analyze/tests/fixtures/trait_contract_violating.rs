// virtual-path: crates/index/src/toy.rs
//! Fixture: a `MultidimIndex` impl overriding a batch surface with no
//! equivalence-suite reference anywhere — `trait-contract` must demand
//! the bit-identity pin.

pub struct ToyIndex;

impl MultidimIndex for ToyIndex {
    fn batch_query(&self, queries: &[RangeQuery]) -> Vec<QueryResult> {
        queries.iter().map(|_| QueryResult::default()).collect()
    }
}
