// virtual-path: crates/demo/src/lib.rs
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
