// virtual-path: crates/core/src/maint/handle_fixture.rs
//! Fixture: the guard-disciplined twin of `guard_scope_violating.rs` —
//! lengths are captured under the guard, every obs call runs after the
//! drop, and the read-side path records under a read guard (shared
//! guards are exempt).
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

pub struct Handle {
    state: RwLock<Vec<u64>>,
    obs: Obs,
}

fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|p| p.into_inner())
}

fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|p| p.into_inner())
}

impl Handle {
    /// Buffers one row; every obs call runs after the guard drops.
    pub fn insert(&self, row: u64) {
        let timer = self.obs.timer();
        let mut st = write_guard(&self.state);
        st.push(row);
        let rows = st.len();
        drop(st);
        self.obs.set_overlay_rows(rows);
        self.obs.record_insert(timer);
    }

    /// Buffered row count, recorded under a shared (exempt) guard.
    pub fn len(&self) -> usize {
        let st = read_guard(&self.state);
        self.obs.record_len_probe(st.len());
        st.len()
    }
}
