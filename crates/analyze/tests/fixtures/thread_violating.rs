// virtual-path: crates/demo/src/lib.rs
pub fn fan_out() {
    std::thread::spawn(|| {});
}
