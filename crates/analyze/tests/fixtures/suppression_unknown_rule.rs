// virtual-path: crates/demo/src/lib.rs
pub fn first(xs: &[u32]) -> u32 {
    // coax-analyze: allow(no-such-rule, some reason)
    *xs.first().unwrap()
}
