// virtual-path: crates/core/src/exec.rs
/// Executes `plan` and returns matching row ids.
pub fn execute(plan: &Plan) -> Vec<u32> {
    plan.run()
}
