// virtual-path: crates/core/src/maint/handle_fixture.rs
//! Fixture: a copy of `handle.rs`'s insert shape with the obs calls
//! moved *inside* the write-guard scope — exactly the regression
//! `guard-scope` exists to catch. The helper-returned guard must be
//! tracked just like a direct `.write()`.
use std::sync::{RwLock, RwLockWriteGuard};

pub struct Handle {
    state: RwLock<Vec<u64>>,
    obs: Obs,
}

fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|p| p.into_inner())
}

impl Handle {
    /// Buffers one row; the obs calls here are deliberately misplaced.
    pub fn insert(&self, row: u64) {
        let timer = self.obs.timer();
        let mut st = write_guard(&self.state);
        st.push(row);
        self.obs.set_overlay_rows(st.len());
        drop(st);
        self.obs.record_insert(timer);
    }
}
