// virtual-path: crates/demo/tests/sort.rs
#[test]
fn sorts() {
    let mut xs = vec![2.0f64, 1.0];
    xs.sort_by(|a, b| a.total_cmp(b));
}
