// virtual-path: crates/core/src/pairlocks.rs
//! Fixture: inconsistent lock ordering. `credit` takes `accounts` and,
//! with the guard live, calls `log` which takes `audit`; `reconcile`
//! takes them in the opposite order. `lock-order` must report the cycle
//! with both acquisition chains.
use std::sync::Mutex;

pub struct Ledger {
    accounts: Mutex<Vec<u64>>,
    audit: Mutex<Vec<u64>>,
}

impl Ledger {
    pub fn credit(&self, amount: u64) {
        let mut accounts = self.accounts.lock().unwrap_or_else(|p| p.into_inner());
        accounts.push(amount);
        self.log(amount);
        drop(accounts);
    }

    fn log(&self, amount: u64) {
        let mut audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        audit.push(amount);
    }

    pub fn reconcile(&self) -> usize {
        let audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        let accounts = self.accounts.lock().unwrap_or_else(|p| p.into_inner());
        accounts.len() + audit.len()
    }
}
