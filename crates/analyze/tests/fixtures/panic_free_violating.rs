// virtual-path: crates/demo/src/lib.rs
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("numeric")
}

pub fn boom() {
    panic!("unconditional");
}
