// virtual-path: crates/index/src/shortcut.rs
pub fn peek(pages: &crate::pages::PageStore) -> usize {
    let slabs = pages.columns();
    let ids = pages.packed_ids();
    slabs.len() + ids.len()
}
