// virtual-path: crates/core/src/exec.rs
pub fn execute(plan: &Plan) -> Vec<u32> {
    plan.run()
}
