//! Analysis driver: walks the workspace, classifies files, tracks
//! `#[cfg(test)]` regions, applies suppressions and aggregates findings.
//!
//! Since v2 the engine is two-phase: every file is lexed into a
//! [`SourceFile`], the per-file rules ([`crate::rules`]) run over each
//! in isolation, then the cross-file rules ([`crate::model`]) run over
//! the whole set at once. Suppressions are audited *after* both phases:
//! an `allow(...)` that no longer silences anything becomes a
//! `stale-suppression` finding, so the ledger can only shrink.
//!
//! The engine is deliberately separable from the CLI so the test suite
//! can run it over fixture snippets ([`analyze_source`],
//! [`analyze_files`]) and over the live workspace ([`check_workspace`])
//! without spawning a process.

use crate::lexer::{self, Comment, Tok};
use crate::model;
use crate::rules;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How a file participates in the rule set.
///
/// Classification is purely path-based (plus `#[cfg(test)]` regions inside
/// library files, which are re-classified as [`FileClass::Test`] line
/// ranges by the engine):
///
/// * `crates/*/src/**`            → [`FileClass::Library`]
/// * `crates/*/src/bin/**`        → [`FileClass::Binary`]
/// * `tests/`, `benches/`, `examples/` → [`FileClass::Test`]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: every rule applies at full strength.
    Library,
    /// Binary entry points (`src/bin/`): panics are acceptable UX, the
    /// invariant rules still apply.
    Binary,
    /// Tests, benches, examples and `#[cfg(test)]` regions.
    Test,
}

/// One diagnostic: a rule violated at a file/line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule identifier (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The canonical single-line rendering: `file:line: rule: message`.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Aggregated result of a workspace check.
#[derive(Debug)]
pub struct Report {
    /// Root the walk started from.
    pub root: PathBuf,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
    /// Surviving findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed suppression comment.
    pub suppressed: usize,
}

impl Report {
    /// Serializes the report as a stable, machine-readable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ =
            writeln!(out, "  \"root\": \"{}\",", json_escape(&self.root.display().to_string()));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"rules\": [");
        for (i, r) in rules::RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(r.name));
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.file),
                f.line,
                json_escape(f.rule),
                json_escape(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Serializes the report as a minimal SARIF 2.1.0 log — the shape
    /// GitHub code scanning ingests: one run, one driver, every rule
    /// declared, every finding a `result` with a physical location.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str(
            "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
             Schemata/sarif-schema-2.1.0.json\",\n",
        );
        out.push_str("  \"runs\": [{\n");
        out.push_str("    \"tool\": {\"driver\": {\"name\": \"coax-analyze\", \"rules\": [");
        for (i, r) in rules::RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                json_escape(r.name),
                json_escape(r.description)
            );
        }
        out.push_str("\n    ]}},\n");
        out.push_str("    \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
                 \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_escape(f.rule),
                json_escape(&f.message),
                json_escape(&f.file),
                f.line
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }]\n}\n");
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Classifies a workspace-relative path (see [`FileClass`]).
pub fn classify(path: &str) -> FileClass {
    if path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/") {
        FileClass::Test
    } else if path.contains("/src/bin/") {
        FileClass::Binary
    } else {
        FileClass::Library
    }
}

/// One lexed source file: the unit both analysis phases consume.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Path-derived class of the whole file.
    pub class: FileClass,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Out-of-band comments.
    pub comments: Vec<Comment>,
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `source` as if it lived at `path`.
    pub fn new(path: String, source: &str) -> SourceFile {
        let (toks, comments) = lexer::lex(source);
        let test_ranges = test_regions(&toks);
        SourceFile { class: classify(&path), path, toks, comments, test_ranges }
    }

    /// The effective class at `line`: [`FileClass::Test`] inside
    /// `#[cfg(test)]` regions, the file's class elsewhere.
    pub fn class_at(&self, line: u32) -> FileClass {
        if self.test_ranges.iter().any(|&(s, e)| s <= line && line <= e) {
            FileClass::Test
        } else {
            self.class
        }
    }

    fn ctx(&self) -> FileContext<'_> {
        FileContext {
            path: &self.path,
            class: self.class,
            toks: &self.toks,
            comments: &self.comments,
            test_ranges: &self.test_ranges,
        }
    }
}

/// A suppression parsed from `// coax-analyze: allow(rule, reason)`.
struct Suppression {
    line: u32,
    rule: String,
}

/// Parses every suppression comment; malformed ones (missing reason,
/// unknown rule) become findings themselves — a suppression must carry an
/// auditable justification to count.
fn parse_suppressions(
    path: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    const MARKER: &str = "coax-analyze:";
    let mut out = Vec::new();
    for c in comments {
        // Doc comments *describe* the grammar (module docs, rule docs);
        // only plain comments can actually suppress.
        if c.is_doc {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else { continue };
        let rest = c.text[at + MARKER.len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                file: path.to_string(),
                line: c.first_line,
                rule: "suppression",
                message: format!(
                    "malformed suppression `{}`: expected `coax-analyze: allow(<rule>, <reason>)`",
                    rest.trim_end()
                ),
            });
            continue;
        };
        let Some(close) = args.rfind(')') else {
            findings.push(Finding {
                file: path.to_string(),
                line: c.first_line,
                rule: "suppression",
                message: "unterminated suppression: missing `)`".to_string(),
            });
            continue;
        };
        let args = &args[..close];
        let (rule, reason) = match args.split_once(',') {
            Some((rule, reason)) => (rule.trim(), reason.trim()),
            None => (args.trim(), ""),
        };
        if !rules::RULES.iter().any(|r| r.name == rule) {
            findings.push(Finding {
                file: path.to_string(),
                line: c.first_line,
                rule: "suppression",
                message: format!("suppression names unknown rule `{rule}`"),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding {
                file: path.to_string(),
                line: c.first_line,
                rule: "suppression",
                message: format!(
                    "suppression of `{rule}` has no reason: write \
                     `coax-analyze: allow({rule}, <why this site is exempt>)`"
                ),
            });
            continue;
        }
        out.push(Suppression { line: c.first_line, rule: rule.to_string() });
    }
    out
}

/// Line ranges covered by `#[cfg(test)]`-gated items (inclusive).
///
/// Matches the standard idiom: a `#[cfg(test)]` attribute (not
/// `#[cfg(not(test))]`), optionally followed by further attributes, then
/// an item whose body is the next `{ … }` block. Attribute-only gates
/// with no body (`#[cfg(test)] use …;`) produce no region.
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (close, is_cfg_test) = scan_attr(toks, i + 1);
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between the gate and the item.
        let mut j = close + 1;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = scan_attr(toks, j + 1).0 + 1;
        }
        // The gated item's body is the next brace block, unless a `;`
        // ends the item first.
        let mut open = None;
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct(';') {
                break;
            }
            if toks[k].is_punct('{') {
                open = Some(k);
                break;
            }
            k += 1;
        }
        match open {
            Some(open) => {
                let end = match_brace(toks, open);
                out.push((toks[i].line, toks[end].line));
                i = end + 1;
            }
            None => i = close + 1,
        }
    }
    out
}

/// From the index of an attribute's `[`, returns the index of its
/// matching `]` and whether the attribute is a `cfg(… test …)` gate
/// (excluding `not(…)` forms).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i, has_cfg && has_test && !has_not);
            }
        } else if t.is_ident("cfg") {
            has_cfg = true;
        } else if t.is_ident("test") {
            has_test = true;
        } else if t.is_ident("not") {
            has_not = true;
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), false)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub(crate) fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Per-file context handed to every per-file rule.
pub struct FileContext<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    /// Path-derived class of the whole file.
    pub class: FileClass,
    /// Token stream.
    pub toks: &'a [Tok],
    /// Out-of-band comments.
    pub comments: &'a [Comment],
    /// `#[cfg(test)]` line ranges.
    test_ranges: &'a [(u32, u32)],
}

impl FileContext<'_> {
    /// The effective class at `line`: [`FileClass::Test`] inside
    /// `#[cfg(test)]` regions, the file's class elsewhere.
    pub fn class_at(&self, line: u32) -> FileClass {
        if self.test_ranges.iter().any(|&(s, e)| s <= line && line <= e) {
            FileClass::Test
        } else {
            self.class
        }
    }
}

/// A suppression with its file and audit flag, for the stale pass.
struct LedgerEntry {
    file: String,
    line: u32,
    rule: String,
    used: bool,
}

/// Analyzes a set of sources as one workspace: per-file rules over each,
/// model rules across all, then the suppression audit. Returns the
/// surviving findings (sorted by file, line, rule) and the number of
/// suppressed ones.
///
/// This is the core entry point; [`analyze_source`] (one virtual file)
/// and [`check_workspace`] (the live tree) are wrappers.
pub fn analyze_files(inputs: &[(String, String)]) -> (Vec<Finding>, usize) {
    let files: Vec<SourceFile> =
        inputs.iter().map(|(path, src)| SourceFile::new(path.clone(), src)).collect();
    // Malformed suppressions are findings in their own right and are
    // never themselves suppressible.
    let mut malformed = Vec::new();
    let mut ledger: Vec<LedgerEntry> = Vec::new();
    let mut raw = Vec::new();
    for file in &files {
        for s in parse_suppressions(&file.path, &file.comments, &mut malformed) {
            ledger.push(LedgerEntry {
                file: file.path.clone(),
                line: s.line,
                rule: s.rule,
                used: false,
            });
        }
        raw.extend(rules::run_rules(&file.ctx()));
    }
    let workspace = model::build(&files);
    model::run_model_rules(&files, &workspace, &mut raw);

    // A suppression covers its own line and the next (the comment-above
    // idiom) for its named rule, in its file only.
    let covers = |s: &LedgerEntry, f: &Finding| {
        s.file == f.file && s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line)
    };
    let mut suppressed = 0;
    raw.retain(|f| match ledger.iter_mut().find(|s| covers(s, f)) {
        Some(s) => {
            s.used = true;
            suppressed += 1;
            false
        }
        None => true,
    });

    // Stale pass: every well-formed suppression that silenced nothing is
    // itself a finding — the ledger can only shrink. A stale finding can
    // be granted a grace period with `allow(stale-suppression, <why>)`,
    // but an unused grace comment is in turn stale (and that is final:
    // the audit does not recurse).
    let mut stale = Vec::new();
    for s in ledger.iter().filter(|s| !s.used && s.rule != "stale-suppression") {
        stale.push(Finding {
            file: s.file.clone(),
            line: s.line,
            rule: "stale-suppression",
            message: format!(
                "suppression of `{}` no longer matches any finding at this site: delete it \
                 (the suppression ledger only shrinks)",
                s.rule
            ),
        });
    }
    stale.retain(|f| {
        match ledger.iter_mut().find(|s| s.rule == "stale-suppression" && covers(s, f)) {
            Some(s) => {
                s.used = true;
                suppressed += 1;
                false
            }
            None => true,
        }
    });
    for s in ledger.iter().filter(|s| !s.used && s.rule == "stale-suppression") {
        stale.push(Finding {
            file: s.file.clone(),
            line: s.line,
            rule: "stale-suppression",
            message: "grace suppression `allow(stale-suppression, ..)` matches no stale \
                      finding: delete it"
                .to_string(),
        });
    }

    raw.extend(stale);
    raw.extend(malformed);
    raw.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    (raw, suppressed)
}

/// Analyzes one source text as if it lived at `path`, returning the
/// surviving findings and the number of suppressed ones.
///
/// This is the fixture-test entry point: the path decides classification
/// and per-rule file scoping, so fixtures declare a *virtual* path.
pub fn analyze_source(path: &str, source: &str) -> (Vec<Finding>, usize) {
    analyze_files(&[(path.to_string(), source.to_string())])
}

/// Walks `root/crates/**/*.rs` (skipping the analyzer's own fixture
/// snippets, which violate rules on purpose) and analyzes the whole set
/// as one workspace.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut inputs = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        if rel.starts_with("crates/analyze/tests/fixtures/") {
            continue;
        }
        inputs.push((rel, std::fs::read_to_string(file)?));
    }
    let scanned = inputs.len();
    let (findings, suppressed) = analyze_files(&inputs);
    Ok(Report { root: root.to_path_buf(), files_scanned: scanned, findings, suppressed })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_by_path() {
        assert_eq!(classify("crates/core/src/exec.rs"), FileClass::Library);
        assert_eq!(classify("crates/bench/src/bin/fig6.rs"), FileClass::Binary);
        assert_eq!(classify("crates/coax/tests/end_to_end.rs"), FileClass::Test);
        assert_eq!(classify("crates/coax/examples/quickstart.rs"), FileClass::Test);
        assert_eq!(classify("crates/bench/benches/fig6_queries.rs"), FileClass::Test);
    }

    #[test]
    fn cfg_test_region_reclassifies_lines() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let (toks, _) = lexer::lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn f() {}\n}\n";
        let (toks, _) = lexer::lex(src);
        assert!(test_regions(&toks).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = "// coax-analyze: allow(panic-free-library)\nfn f() {}\n";
        let (findings, suppressed) = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(suppressed, 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "suppression");
        assert!(findings[0].message.contains("no reason"));
    }

    #[test]
    fn suppression_with_reason_silences_same_and_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // coax-analyze: allow(panic-free-library, demo reason)\n    \
                   x.unwrap()\n}\n";
        let (findings, suppressed) = analyze_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unknown_rule_in_suppression_is_rejected() {
        let src = "// coax-analyze: allow(no-such-rule, because)\nfn f() {}\n";
        let (findings, _) = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_suppression_is_stale() {
        let src = "// coax-analyze: allow(panic-free-library, used to unwrap here)\n\
                   fn f() -> u32 { 1 }\n";
        let (findings, suppressed) = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(suppressed, 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "stale-suppression");
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("panic-free-library"));
    }

    #[test]
    fn stale_finding_can_be_granted_grace() {
        let src = "// coax-analyze: allow(stale-suppression, grace until the WAL PR lands)\n\
                   // coax-analyze: allow(panic-free-library, used to unwrap here)\n\
                   fn f() -> u32 { 1 }\n";
        let (findings, suppressed) = analyze_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unused_grace_suppression_is_itself_stale() {
        let src = "// coax-analyze: allow(stale-suppression, nothing stale here)\n\
                   fn f() -> u32 { 1 }\n";
        let (findings, _) = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "stale-suppression");
        assert!(findings[0].message.contains("grace suppression"));
    }

    #[test]
    fn analyze_files_spans_files_for_model_rules() {
        // The impl lives in one file, the equivalence reference in
        // another: only the cross-file view keeps `trait-contract` quiet.
        let imp = "struct G;\nimpl MultidimIndex for G {\n    fn batch_query(&self) {}\n}\n"
            .to_string();
        let test = "fn pin() { let _ = G; }\n".to_string();
        let (findings, _) = analyze_files(&[
            ("crates/index/src/g.rs".to_string(), imp.clone()),
            ("crates/index/tests/equivalence.rs".to_string(), test),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
        let (findings, _) = analyze_files(&[("crates/index/src/g.rs".to_string(), imp)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "trait-contract");
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            root: PathBuf::from("."),
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "panic-free-library",
                message: "a \"quoted\" message".to_string(),
            }],
            suppressed: 1,
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"rules\": ["));
    }

    #[test]
    fn sarif_report_shape() {
        let report = Report {
            root: PathBuf::from("."),
            files_scanned: 1,
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "lock-order",
                message: "cycle".to_string(),
            }],
            suppressed: 0,
        };
        let sarif = report.to_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"coax-analyze\""));
        assert!(sarif.contains("\"ruleId\": \"lock-order\""));
        assert!(sarif.contains("\"startLine\": 3"));
        assert!(sarif.contains("\"uri\": \"crates/x/src/lib.rs\""));
    }
}
