//! A minimal Rust token scanner: comments-, strings- and raw-strings-aware.
//!
//! The workspace vendors only `rand` and `criterion`, so this analyzer
//! cannot lean on `syn` or `proc-macro2`; instead it lexes source files
//! into a flat token stream that is *just* faithful enough for the rule
//! set in [`crate::rules`]:
//!
//! * identifiers and keywords come out as [`TokKind::Ident`] with text;
//! * every other significant character is a single-character
//!   [`TokKind::Punct`] (so `::` is two `:` tokens and rules match short
//!   token sequences);
//! * string/char/number literals collapse to [`TokKind::Lit`] — their
//!   content can never trigger an identifier rule (rules match idents by
//!   kind), but plain `"…"` strings keep their text in [`Tok::text`] so
//!   literal-argument rules (`obs-naming`) can validate it;
//! * comments are captured out-of-band as [`Comment`]s, because the
//!   suppression grammar (`// coax-analyze: allow(rule, reason)`) and the
//!   `doc-headers` rule both read them.
//!
//! The scanner understands nested block comments, escape sequences,
//! raw/byte strings (`r".."`, `r#".."#`, `b".."`, `br#".."#`) and the
//! lifetime-vs-char-literal ambiguity. It does not attempt full fidelity
//! (float suffix corner cases and the like degrade to `Lit` tokens),
//! which is exactly the failure mode the rules tolerate.

/// What a token is; rules match on this plus the identifier text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword; the text lives in [`Tok::text`].
    Ident,
    /// A single significant character (`.`, `(`, `::` is two of these, …).
    Punct(char),
    /// A string/char/number literal. Plain `"…"` strings retain their
    /// content (escapes kept verbatim) in [`Tok::text`]; raw strings,
    /// chars and numbers leave it empty.
    Lit,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Identifier text (empty for punctuation and literals).
    pub text: String,
}

impl Tok {
    /// `true` if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment captured out-of-band, with its line span.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub first_line: u32,
    /// 1-based line the comment ends on (same as `first_line` for `//`).
    pub last_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`).
    pub is_doc: bool,
}

/// Lexes `src` into a token stream plus the comment list.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        let mut toks = Vec::new();
        let mut comments = Vec::new();
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                comments.push(self.line_comment());
            } else if c == '/' && self.peek(1) == Some('*') {
                comments.push(self.block_comment());
            } else if c == '"' {
                let line = self.line;
                let text = self.string();
                toks.push(Tok { line, kind: TokKind::Lit, text });
            } else if c == 'r' || c == 'b' {
                self.raw_or_ident(&mut toks);
            } else if c == '\'' {
                self.lifetime_or_char(&mut toks);
            } else if c.is_ascii_digit() {
                let line = self.line;
                self.number();
                toks.push(Tok { line, kind: TokKind::Lit, text: String::new() });
            } else if c.is_alphanumeric() || c == '_' {
                toks.push(self.ident());
            } else {
                let line = self.line;
                self.bump();
                toks.push(Tok { line, kind: TokKind::Punct(c), text: String::new() });
            }
        }
        (toks, comments)
    }

    fn line_comment(&mut self) -> Comment {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let is_doc =
            (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        Comment { first_line: line, last_line: line, text, is_doc }
    }

    fn block_comment(&mut self) -> Comment {
        let first_line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push('/');
                text.push('*');
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push('*');
                text.push('/');
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let is_doc =
            (text.starts_with("/**") && !text.starts_with("/***")) || text.starts_with("/*!");
        Comment { first_line, last_line: self.line, text, is_doc }
    }

    /// Consumes a `"…"` string with escapes (cursor on the opening
    /// quote), returning the content between the quotes with escape
    /// sequences kept verbatim (`\"` stays two characters — good enough
    /// for name validation, which rejects backslashes anyway).
    fn string(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            } else {
                text.push(c);
            }
        }
        text
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` or falls back
    /// to a plain identifier starting with `r`/`b`.
    fn raw_or_ident(&mut self, toks: &mut Vec<Tok>) {
        let line = self.line;
        // Count the prefix shape without consuming.
        let mut ahead = 1; // past the r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        let after = self.peek(ahead + hashes);
        let raw = ahead + hashes > 1 || hashes > 0; // r#…, br…, b…
        let is_string = after == Some('"') && (raw || ahead == 1 && self.peek(0) != Some('b'));
        let is_byte_string = after == Some('"') && self.peek(0) == Some('b');
        let is_byte_char = self.peek(0) == Some('b') && self.peek(1) == Some('\'');
        if is_byte_char {
            self.bump(); // b
            self.lifetime_or_char(toks);
            return;
        }
        if is_string || is_byte_string {
            for _ in 0..ahead + hashes {
                self.bump();
            }
            if hashes == 0 {
                self.string();
            } else {
                // Raw string: ends at `"` followed by `hashes` hashes.
                self.bump(); // opening quote
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        for h in 0..hashes {
                            if self.peek(h) != Some('#') {
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
            }
            toks.push(Tok { line, kind: TokKind::Lit, text: String::new() });
        } else {
            toks.push(self.ident());
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal);
    /// cursor sits on the `'`.
    fn lifetime_or_char(&mut self, toks: &mut Vec<Tok>) {
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
        self.bump(); // the quote
        if lifetime {
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            toks.push(Tok { line, kind: TokKind::Lit, text: String::new() });
        } else {
            if self.peek(0) == Some('\\') {
                self.bump();
            }
            self.bump(); // the char
            if self.peek(0) == Some('\'') {
                self.bump();
            }
            toks.push(Tok { line, kind: TokKind::Lit, text: String::new() });
        }
    }

    /// Consumes a numeric literal (decimal, hex/oct/bin, float + exponent,
    /// type suffix). Over-eager suffix handling is fine: it still yields
    /// one `Lit` token.
    fn number(&mut self) {
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b'))
        {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            return;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // Fraction: only if the dot is followed by a digit (so `0..10`
        // leaves the range dots alone).
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                self.bump();
                if sign {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`f64`, `u32`, …).
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
    }

    fn ident(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        Tok { line, kind: TokKind::Ident, text }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).0.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // unwrap in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"expect( inside a raw string"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic" || i == "expect"));
    }

    #[test]
    fn plain_strings_retain_content_for_literal_rules() {
        let toks = lex(r#"reg.counter("coax.query.count"); let e = "a\"b";"#).0;
        let lits: Vec<String> =
            toks.iter().filter(|t| t.kind == TokKind::Lit).map(|t| t.text.clone()).collect();
        assert_eq!(lits, vec!["coax.query.count".to_string(), "a\\\"b".to_string()]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let (_, comments) = lex("/// docs\n//! inner\n// plain\nfn f() {}\n");
        let docs: Vec<bool> = comments.iter().map(|c| c.is_doc).collect();
        assert_eq!(docs, vec![true, true, false]);
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_and_ranges() {
        let src = "let c = 'x'; let e = '\\n'; for i in 0..10 { touch(i); }";
        let ids = idents(src);
        assert!(ids.contains(&"touch".to_string()));
        // The range dots survive as punctuation.
        let dots = lex(src).0.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        let src = "let a = 1.5e-3f64; let b = 0xFFu32; let c = 10_000;";
        let lits = lex(src).0.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn lines_are_tracked() {
        let (toks, comments) = lex("a\nb // c\nd\n");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
        assert_eq!(comments[0].first_line, 2);
    }
}
