//! CLI entry point: `coax-analyze check [--json] [--root <dir>]`.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: coax-analyze check [--json] [--root <dir>]

Walks <root>/crates/**/*.rs and enforces the COAX project-invariant
lint rules. Exit 0 when clean, 1 on findings, 2 on usage/IO errors.

  --json        emit a machine-readable report on stdout
  --root <dir>  workspace root to analyze (default: current directory)

Suppress a finding inline with a mandatory reason:
  // coax-analyze: allow(<rule>, <reason>)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut command = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--json" => json = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => {
                        eprintln!("coax-analyze: --root requires a directory\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("coax-analyze: unrecognized argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") {
        eprintln!("coax-analyze: expected the `check` command\n{USAGE}");
        return ExitCode::from(2);
    }

    let report = match coax_analyze::check_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("coax-analyze: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        eprintln!(
            "coax-analyze: {} finding(s) in {} file(s) ({} suppressed with reasons)",
            report.findings.len(),
            report.files_scanned,
            report.suppressed
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
