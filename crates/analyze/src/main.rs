//! CLI entry point: `coax-analyze check [--format <f>] [--root <dir>]
//! [--baseline <file> | --write-baseline <file>]`.
//!
//! Exit codes: `0` clean (or no *new* findings under `--baseline`),
//! `1` findings, `2` usage or I/O error.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: coax-analyze check [options]

Walks <root>/crates/**/*.rs and enforces the COAX project-invariant
lint rules. Exit 0 when clean, 1 on findings, 2 on usage/IO errors.

  --format <text|json|sarif>  output format (default: text)
  --json                      deprecated alias for --format json
  --root <dir>                workspace root to analyze (default: .)
  --baseline <file>           exit 1 only on findings not in <file>
  --write-baseline <file>     snapshot current findings to <file>, exit 0

Suppress a finding inline with a mandatory reason:
  // coax-analyze: allow(<rule>, <reason>)";

/// Output format for the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Parsed command line.
#[derive(Debug, PartialEq, Eq)]
struct Opts {
    format: Format,
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    /// `--json` was used; a deprecation note goes to stderr.
    json_deprecated: bool,
}

/// Parses argv (without the program name). Pure so the unit tests cover
/// every rejection path: duplicated `check`, missing/dashed flag values,
/// unknown arguments, conflicting baseline modes.
fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut command_seen = false;
    let mut format = None;
    let mut json_deprecated = false;
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut write_baseline = None;
    let mut i = 0;
    // A flag value must be a real operand: a `-`-leading token here is
    // almost always a mistyped flag swallowed as a value.
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        match args.get(i) {
            Some(v) if !v.starts_with('-') => Ok(v.clone()),
            Some(v) => Err(format!("{flag} requires a value, got flag-like `{v}`")),
            None => Err(format!("{flag} requires a value")),
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "check" => {
                if command_seen {
                    return Err("duplicated `check` subcommand".to_string());
                }
                command_seen = true;
            }
            "--format" => {
                i += 1;
                format = Some(match value(args, i, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        return Err(format!(
                            "unknown format `{other}` (expected text, json or sarif)"
                        ))
                    }
                });
            }
            "--json" => {
                format = Some(Format::Json);
                json_deprecated = true;
            }
            "--root" => {
                i += 1;
                root = PathBuf::from(value(args, i, "--root")?);
            }
            "--baseline" => {
                i += 1;
                baseline = Some(PathBuf::from(value(args, i, "--baseline")?));
            }
            "--write-baseline" => {
                i += 1;
                write_baseline = Some(PathBuf::from(value(args, i, "--write-baseline")?));
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
        i += 1;
    }
    if !command_seen {
        return Err("expected the `check` command".to_string());
    }
    if baseline.is_some() && write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    Ok(Opts {
        format: format.unwrap_or(Format::Text),
        root,
        baseline,
        write_baseline,
        json_deprecated,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("coax-analyze: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.json_deprecated {
        eprintln!("coax-analyze: note: --json is deprecated, use --format json");
    }

    let report = match coax_analyze::check_workspace(&opts.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("coax-analyze: failed to read workspace at {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let text = coax_analyze::baseline::write_baseline(&report);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("coax-analyze: failed to write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "coax-analyze: wrote baseline with {} finding(s) to {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let new_findings: Vec<&coax_analyze::Finding> = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("coax-analyze: failed to read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let baseline = match coax_analyze::baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("coax-analyze: invalid baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            coax_analyze::baseline::filter_new(&report.findings, &baseline)
        }
        None => report.findings.iter().collect(),
    };

    match opts.format {
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", report.to_sarif()),
        Format::Text => {
            for f in &new_findings {
                println!("{}", f.render());
            }
            let baselined = report.findings.len() - new_findings.len();
            if baselined > 0 {
                eprintln!(
                    "coax-analyze: {} new finding(s) ({} accepted by the baseline) in {} \
                     file(s) ({} suppressed with reasons)",
                    new_findings.len(),
                    baselined,
                    report.files_scanned,
                    report.suppressed
                );
            } else {
                eprintln!(
                    "coax-analyze: {} finding(s) in {} file(s) ({} suppressed with reasons)",
                    new_findings.len(),
                    report.files_scanned,
                    report.suppressed
                );
            }
        }
    }
    if new_findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn plain_check_parses_with_defaults() {
        let opts = parse_args(&argv("check")).expect("parses");
        assert_eq!(opts.format, Format::Text);
        assert_eq!(opts.root, PathBuf::from("."));
        assert_eq!(opts.baseline, None);
        assert_eq!(opts.write_baseline, None);
        assert!(!opts.json_deprecated);
    }

    #[test]
    fn duplicated_check_is_rejected() {
        let err = parse_args(&argv("check check")).expect_err("rejects");
        assert!(err.contains("duplicated"), "{err}");
    }

    #[test]
    fn missing_command_is_rejected() {
        assert!(parse_args(&argv("--format json")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn formats_parse_and_bad_format_is_rejected() {
        assert_eq!(parse_args(&argv("check --format text")).expect("ok").format, Format::Text);
        assert_eq!(parse_args(&argv("check --format json")).expect("ok").format, Format::Json);
        assert_eq!(
            parse_args(&argv("check --format sarif")).expect("ok").format,
            Format::Sarif
        );
        assert!(parse_args(&argv("check --format yaml")).is_err());
        assert!(parse_args(&argv("check --format")).is_err());
    }

    #[test]
    fn json_alias_still_works_and_is_marked_deprecated() {
        let opts = parse_args(&argv("check --json")).expect("parses");
        assert_eq!(opts.format, Format::Json);
        assert!(opts.json_deprecated);
    }

    #[test]
    fn root_takes_a_real_value_not_a_flag() {
        let opts = parse_args(&argv("check --root /tmp/ws")).expect("parses");
        assert_eq!(opts.root, PathBuf::from("/tmp/ws"));
        let err = parse_args(&argv("check --root --json")).expect_err("rejects");
        assert!(err.contains("--root"), "{err}");
        assert!(parse_args(&argv("check --root")).is_err());
    }

    #[test]
    fn baseline_flags_parse_and_conflict() {
        let opts = parse_args(&argv("check --baseline b.json")).expect("parses");
        assert_eq!(opts.baseline, Some(PathBuf::from("b.json")));
        let opts = parse_args(&argv("check --write-baseline b.json")).expect("parses");
        assert_eq!(opts.write_baseline, Some(PathBuf::from("b.json")));
        assert!(parse_args(&argv("check --baseline a.json --write-baseline b.json")).is_err());
        assert!(parse_args(&argv("check --baseline --write-baseline")).is_err());
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        assert!(parse_args(&argv("check --frobnicate")).is_err());
        assert!(parse_args(&argv("check extra")).is_err());
    }
}
