//! `coax-analyze` — project-invariant static analysis for the COAX
//! workspace.
//!
//! COAX's correctness rests on contracts the compiler cannot check: the
//! scan kernel's bit-identity promise, the local-id remap contract, the
//! epoch-swap/snapshot discipline, seeded-deterministic test suites.
//! This crate machine-checks the source-level shadows of those contracts
//! on every push, with zero dependencies (the workspace vendors only
//! `rand`/`criterion`, so the scanner is hand-rolled pure std — see
//! [`lexer`]).
//!
//! ```text
//! cargo run -p coax-analyze -- check            # human-readable, exit 1 on findings
//! cargo run -p coax-analyze -- check --json     # machine-readable report
//! ```
//!
//! Rules are listed in [`rules::RULES`]; a finding is silenced inline
//! with `// coax-analyze: allow(<rule>, <reason>)` on the same or the
//! preceding line — the reason is mandatory and audited (a reasonless or
//! unknown-rule suppression is itself a finding).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, check_workspace, FileClass, Finding, Report};
