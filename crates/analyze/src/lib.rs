//! `coax-analyze` — project-invariant static analysis for the COAX
//! workspace.
//!
//! COAX's correctness rests on contracts the compiler cannot check: the
//! scan kernel's bit-identity promise, the local-id remap contract, the
//! epoch-swap/snapshot discipline, lock ordering and guard scopes in the
//! maintenance and shard layers, seeded-deterministic test suites. This
//! crate machine-checks the source-level shadows of those contracts on
//! every push, with zero dependencies (the workspace vendors only
//! `rand`/`criterion`, so the scanner is hand-rolled pure std — see
//! [`lexer`]).
//!
//! The engine is two-phase: per-file rules run over each token stream in
//! isolation ([`rules`]), then a lightweight workspace model — items,
//! lock fields, guard scopes, an approximate call graph — is built over
//! every file at once and the cross-file rules run over it ([`model`]).
//! A committed baseline ([`baseline`]) lets new rules land strict on new
//! code while legacy findings are burned down reviewably.
//!
//! ```text
//! cargo run -p coax-analyze -- check                    # human-readable, exit 1 on findings
//! cargo run -p coax-analyze -- check --format sarif     # GitHub code-scanning output
//! cargo run -p coax-analyze -- check --baseline analyze-baseline.json   # delta gate
//! ```
//!
//! Rules are listed in [`rules::RULES`]; a finding is silenced inline
//! with `// coax-analyze: allow(<rule>, <reason>)` on the same or the
//! preceding line — the reason is mandatory and audited (a reasonless,
//! unknown-rule or *no-longer-firing* suppression is itself a finding,
//! so the ledger only shrinks).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod rules;

pub use engine::{
    analyze_files, analyze_source, check_workspace, FileClass, Finding, Report, SourceFile,
};
