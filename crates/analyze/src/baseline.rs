//! Baseline / delta mode: land strict-on-new-code.
//!
//! A baseline is a committed snapshot of accepted findings
//! (`analyze-baseline.json`, regenerated with `--write-baseline`).
//! Under `check --baseline <file>` the gate exits non-zero only on
//! findings **not** in the baseline, so a new rule can ship strict while
//! a legacy site gets a grace period — and because the baseline is
//! committed, growing it is a reviewable diff, never a silent drift.
//!
//! Matching is by `(file, rule, message)` and deliberately ignores the
//! line number: unrelated edits move findings around without changing
//! what they say, and a baseline that rots on every reformat would be
//! regenerated reflexively, defeating the review gate.
//!
//! The format is versioned JSON:
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [
//!     {"file": "crates/x/src/a.rs", "line": 3, "rule": "lock-order", "message": "..."}
//!   ]
//! }
//! ```
//!
//! The parser below is a minimal recursive-descent JSON reader — the
//! analyzer is dependency-free by design, and the subset here (objects,
//! arrays, strings, numbers, bools, null) covers everything the format
//! and its hand-edits can contain.

use crate::engine::{json_escape, Finding, Report};
use std::collections::HashSet;
use std::fmt::Write as _;

/// A parsed baseline: the set of accepted finding keys.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: HashSet<(String, String, String)>,
}

impl Baseline {
    /// `true` if `f` is covered by the baseline (line-agnostic match).
    pub fn contains(&self, f: &Finding) -> bool {
        // Key clones are confined to lookups; the set is tiny.
        self.keys.contains(&(f.file.clone(), f.rule.to_string(), f.message.clone()))
    }

    /// Number of accepted findings.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the baseline accepts nothing (the steady state).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Renders a report's findings as baseline JSON.
pub fn write_baseline(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message)
        );
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses baseline JSON; errors carry enough context to fix the file.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let (value, rest) = parse_value(text.trim_start())?;
    if !rest.trim_start().is_empty() {
        return Err("trailing content after the top-level object".to_string());
    }
    let Json::Object(fields) = value else {
        return Err("baseline must be a JSON object".to_string());
    };
    let version = fields.iter().find(|(k, _)| k == "version").map(|(_, v)| v);
    match version {
        Some(Json::Number(n)) if *n == 1.0 => {}
        Some(_) => return Err("unsupported baseline `version` (expected 1)".to_string()),
        None => return Err("baseline is missing the `version` field".to_string()),
    }
    let Some((_, Json::Array(items))) = fields.iter().find(|(k, _)| k == "findings") else {
        return Err("baseline is missing the `findings` array".to_string());
    };
    let mut keys = HashSet::new();
    for (i, item) in items.iter().enumerate() {
        let Json::Object(entry) = item else {
            return Err(format!("findings[{i}] is not an object"));
        };
        let get = |name: &str| -> Result<String, String> {
            match entry.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                Some(Json::String(s)) => Ok(s.clone()),
                _ => Err(format!("findings[{i}] is missing string field `{name}`")),
            }
        };
        keys.insert((get("file")?, get("rule")?, get("message")?));
    }
    Ok(Baseline { keys })
}

/// Findings in `report` that the baseline does not cover.
pub fn filter_new<'a>(findings: &'a [Finding], baseline: &Baseline) -> Vec<&'a Finding> {
    findings.iter().filter(|f| !baseline.contains(f)).collect()
}

enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool,
    Null,
}

fn parse_value(s: &str) -> Result<(Json, &str), String> {
    let s = s.trim_start();
    match s.chars().next() {
        Some('{') => parse_object(s),
        Some('[') => parse_array(s),
        Some('"') => parse_string(s).map(|(v, r)| (Json::String(v), r)),
        Some('t') => s
            .strip_prefix("true")
            .map(|r| (Json::Bool, r))
            .ok_or_else(|| "invalid literal".to_string()),
        Some('f') => s
            .strip_prefix("false")
            .map(|r| (Json::Bool, r))
            .ok_or_else(|| "invalid literal".to_string()),
        Some('n') => s
            .strip_prefix("null")
            .map(|r| (Json::Null, r))
            .ok_or_else(|| "invalid literal".to_string()),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(s),
        _ => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(s: &str) -> Result<(Json, &str), String> {
    let mut rest = s.strip_prefix('{').ok_or("expected `{`")?.trim_start();
    let mut fields = Vec::new();
    if let Some(r) = rest.strip_prefix('}') {
        return Ok((Json::Object(fields), r));
    }
    loop {
        let (key, r) = parse_string(rest.trim_start())?;
        let r = r.trim_start().strip_prefix(':').ok_or("expected `:` after object key")?;
        let (value, r) = parse_value(r)?;
        fields.push((key, value));
        let r = r.trim_start();
        if let Some(r) = r.strip_prefix(',') {
            rest = r;
        } else if let Some(r) = r.strip_prefix('}') {
            return Ok((Json::Object(fields), r));
        } else {
            return Err("expected `,` or `}` in object".to_string());
        }
    }
}

fn parse_array(s: &str) -> Result<(Json, &str), String> {
    let mut rest = s.strip_prefix('[').ok_or("expected `[`")?.trim_start();
    let mut items = Vec::new();
    if let Some(r) = rest.strip_prefix(']') {
        return Ok((Json::Array(items), r));
    }
    loop {
        let (value, r) = parse_value(rest)?;
        items.push(value);
        let r = r.trim_start();
        if let Some(r) = r.strip_prefix(',') {
            rest = r;
        } else if let Some(r) = r.strip_prefix(']') {
            return Ok((Json::Array(items), r));
        } else {
            return Err("expected `,` or `]` in array".to_string());
        }
    }
}

fn parse_string(s: &str) -> Result<(String, &str), String> {
    let mut chars = s.strip_prefix('"').ok_or("expected `\"`")?.char_indices();
    let rest = &s[1..];
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code =
                            code * 16 + h.to_digit(16).ok_or("non-hex digit in \\u escape")?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return Err("invalid escape in string".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(s: &str) -> Result<(Json, &str), String> {
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(s.len());
    let n: f64 = s[..end].parse().map_err(|_| format!("invalid number `{}`", &s[..end]))?;
    Ok((Json::Number(n), &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(file: &str, line: u32, message: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: "lock-order",
            message: message.to_string(),
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report { root: PathBuf::from("."), files_scanned: 1, findings, suppressed: 0 }
    }

    #[test]
    fn round_trips_empty_and_nonempty() {
        let empty = parse(&write_baseline(&report(vec![]))).expect("empty baseline parses");
        assert!(empty.is_empty());
        let r = report(vec![finding("crates/x/src/a.rs", 3, "a \"quoted\" cycle\nline two")]);
        let b = parse(&write_baseline(&r)).expect("baseline parses");
        assert_eq!(b.len(), 1);
        assert!(b.contains(&r.findings[0]));
    }

    #[test]
    fn matching_ignores_the_line_number() {
        let b = parse(&write_baseline(&report(vec![finding("crates/x/src/a.rs", 3, "cycle")])))
            .expect("parses");
        assert!(b.contains(&finding("crates/x/src/a.rs", 99, "cycle")));
        assert!(!b.contains(&finding("crates/x/src/a.rs", 3, "different message")));
        assert!(!b.contains(&finding("crates/x/src/b.rs", 3, "cycle")));
    }

    #[test]
    fn filter_new_returns_only_uncovered() {
        let b = parse(&write_baseline(&report(vec![finding("crates/x/src/a.rs", 3, "old")])))
            .expect("parses");
        let live = vec![
            finding("crates/x/src/a.rs", 7, "old"),
            finding("crates/x/src/a.rs", 9, "new"),
        ];
        let fresh = filter_new(&live, &b);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].message, "new");
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(parse("[]").is_err());
        assert!(parse("{\"findings\": []}").is_err(), "missing version");
        assert!(parse("{\"version\": 2, \"findings\": []}").is_err(), "future version");
        assert!(parse("{\"version\": 1}").is_err(), "missing findings");
        assert!(parse("{\"version\": 1, \"findings\": [{\"file\": \"x\"}]}").is_err());
        assert!(parse("{\"version\": 1, \"findings\": []} trailing").is_err());
    }

    #[test]
    fn unescapes_strings() {
        let b = parse(
            "{\"version\": 1, \"findings\": [{\"file\": \"a\", \"rule\": \"lock-order\", \
             \"message\": \"tab\\there \\u0041\"}]}",
        )
        .expect("parses");
        assert!(b.contains(&finding("a", 1, "tab\there A")));
    }
}
