//! Phase 1 of the two-phase engine: the **workspace model**.
//!
//! The per-file rules in [`crate::rules`] see one token stream at a
//! time; the invariants that carry the system's concurrency story (lock
//! ordering, guard scopes, the equivalence-suite contract) are
//! cross-file. This module parses every file's token stream into a
//! lightweight item model — `struct` lock fields, `impl` blocks, `fn`
//! items with their guard-acquisition sites, guard-scope intervals and
//! outgoing calls — and runs the cross-file rules over the whole model:
//!
//! | rule | invariant |
//! |---|---|
//! | `lock-order`     | the workspace lock-acquisition graph is acyclic |
//! | `guard-scope`    | no obs/journal/metrics traffic while a write/mutex guard is live |
//! | `trait-contract` | every `MultidimIndex` impl overriding a batch/cursor surface is pinned by an equivalence suite |
//!
//! (`stale-suppression`, the fourth v2 rule, lives in the engine: it
//! audits the suppression ledger against the final finding set.)
//!
//! The model is deliberately approximate — no types, no inference, no
//! macro expansion. Precision comes from resolving only what can be
//! named: `self.field` through the enclosing impl, struct fields that
//! are unique workspace-wide, local `Mutex::new`/`RwLock::new` bindings,
//! and the guard-returning helper functions (`read_guard`,
//! `table_write`, …, detected by their return type). A receiver the
//! model cannot resolve never becomes a lock identity, so every
//! reported cycle is backed by two concrete acquisition chains; the
//! call graph is propagated exactly one level, and only through calls
//! whose callee set is attributable (free/associated calls, and
//! `self.method()` filtered by the enclosing impl type).

use crate::engine::{match_brace, FileClass, Finding, SourceFile};
use crate::lexer::{Tok, TokKind};
use crate::rules::match_paren;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// What flavour of guard an acquisition produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// `RwLock::read` — shared; exempt from `guard-scope`.
    Read,
    /// `RwLock::write` — exclusive.
    Write,
    /// `Mutex::lock` — exclusive.
    Mutex,
}

impl GuardKind {
    fn noun(self) -> &'static str {
        match self {
            GuardKind::Read => "read",
            GuardKind::Write => "write",
            GuardKind::Mutex => "mutex",
        }
    }
}

/// The identity of the lock behind a guard acquisition.
///
/// Only `Field` and `Helper` identities participate in the lock-order
/// graph (they name one lock workspace-wide); `Local` identities are
/// site-unique and feed `guard-scope` only.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockId {
    /// A `Mutex`/`RwLock` struct field, `owner.field`.
    Field {
        /// The struct that declares the field.
        owner: String,
        /// The field name.
        field: String,
    },
    /// A guard-returning method called as `self.helper()` — the lock is
    /// whatever the helper's impl type wraps (e.g. the registry's
    /// internal `lock()`).
    Helper {
        /// The impl type the helper belongs to.
        owner: String,
        /// The helper method name.
        helper: String,
    },
    /// A local lock binding or an unresolvable helper argument;
    /// identified by name and line, never linked across functions.
    Local {
        /// The binding or pseudo name.
        name: String,
        /// Acquisition line (keeps the id site-unique).
        line: u32,
    },
}

impl LockId {
    /// Human-readable lock name for diagnostics.
    pub fn render(&self) -> String {
        match self {
            LockId::Field { owner, field } => format!("{owner}.{field}"),
            LockId::Helper { owner, helper } => format!("{owner}::{helper}()"),
            LockId::Local { name, .. } => format!("local `{name}`"),
        }
    }

    /// The workspace-wide graph key, if this identity names one lock.
    fn key(&self) -> Option<String> {
        match self {
            LockId::Local { .. } => None,
            other => Some(other.render()),
        }
    }
}

/// One guard acquisition inside a function body, with its live scope.
#[derive(Clone, Debug)]
pub struct GuardSite {
    /// Which lock is acquired.
    pub lock: LockId,
    /// Guard flavour.
    pub kind: GuardKind,
    /// 1-based acquisition line.
    pub line: u32,
    /// Token index of the acquiring call's name.
    pub call_tok: usize,
    /// Token index of the acquiring call's closing `)`.
    pub end_call: usize,
    /// Last token index (inclusive) at which the guard is live:
    /// `drop(binding)`, end of statement for an unbound temporary, or
    /// the enclosing block's `}`.
    pub scope_end: usize,
}

/// How a call site names its callee — decides call-graph attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallForm {
    /// `foo(..)` or `Path::foo(..)` — matched against every fn `foo`.
    Free,
    /// `self.foo(..)` — matched against fns `foo` on the same impl type.
    SelfMethod,
    /// `expr.foo(..)` — receiver type unknown, never propagated.
    Method,
}

/// One outgoing call inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name token text.
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Attribution form.
    pub form: CallForm,
}

/// One `fn` item (free, inherent or trait method) with its body scan.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Index into the analyzed file list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Enclosing impl's type name, if any.
    pub self_type: Option<String>,
    /// Enclosing impl's trait name, if any.
    pub trait_name: Option<String>,
    /// Token range of the body: `(index of {, index of })`.
    pub body: (usize, usize),
    /// `true` for test files and `#[cfg(test)]` regions.
    pub is_test: bool,
    /// `Some` when the return type names a guard type — the fn is a
    /// guard helper and its *call sites* are acquisitions.
    pub returns_guard: Option<GuardKind>,
    /// Guard acquisitions in the body.
    pub guards: Vec<GuardSite>,
    /// Outgoing calls in the body.
    pub calls: Vec<CallSite>,
}

/// One `impl` block header (`impl Type` or `impl Trait for Type`).
#[derive(Clone, Debug)]
pub struct ImplBlock {
    /// Index into the analyzed file list.
    pub file: usize,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Trait name (last path segment) for trait impls.
    pub trait_name: Option<String>,
    /// Implementing type name (first path segment of the type).
    pub type_name: String,
    /// Token range of the block body.
    pub body: (usize, usize),
}

/// The phase-1 product: every item the cross-file rules need.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Every `fn` item in the workspace.
    pub fns: Vec<FnItem>,
    /// Every `impl` block in the workspace.
    pub impls: Vec<ImplBlock>,
    /// Lock-typed struct fields: field name → declaring structs.
    pub lock_fields: HashMap<String, Vec<String>>,
    /// Function name → indices into [`WorkspaceModel::fns`].
    pub fns_by_name: HashMap<String, Vec<usize>>,
    /// Guard-helper name → (guard kind, impl type if a method).
    pub helpers: HashMap<String, (GuardKind, Option<String>)>,
}

/// Builds the workspace model over every analyzed file.
pub fn build(files: &[SourceFile]) -> WorkspaceModel {
    let mut model = WorkspaceModel::default();
    for (fi, file) in files.iter().enumerate() {
        scan_structs(file, &mut model);
        scan_impls(fi, file, &mut model);
    }
    for (fi, file) in files.iter().enumerate() {
        scan_fns(fi, file, &mut model);
    }
    for f in &model.fns {
        if let Some(kind) = f.returns_guard {
            model.helpers.entry(f.name.clone()).or_insert((kind, f.self_type.clone()));
        }
    }
    for (i, f) in model.fns.iter().enumerate() {
        model.fns_by_name.entry(f.name.clone()).or_default().push(i);
    }
    let scans: Vec<(Vec<GuardSite>, Vec<CallSite>)> =
        (0..model.fns.len()).map(|i| scan_fn_body(&model, files, i)).collect();
    for (i, (guards, calls)) in scans.into_iter().enumerate() {
        model.fns[i].guards = guards;
        model.fns[i].calls = calls;
    }
    model
}

/// Runs every model-based rule, appending findings.
pub fn run_model_rules(files: &[SourceFile], model: &WorkspaceModel, out: &mut Vec<Finding>) {
    lock_order(files, model, out);
    guard_scope(files, model, out);
    trait_contract(files, model, out);
}

/// Index just past the `>` matching the `<` at `open`. A `>` preceded
/// by `-` (i.e. the arrow `->`) never closes a bracket.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Collects `Mutex`/`RwLock`-typed struct fields into the model.
fn scan_structs(file: &SourceFile, model: &mut WorkspaceModel) {
    let toks = &file.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_ident("struct") && toks[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let owner = toks[i + 1].text.clone();
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('{')) {
            i = j; // tuple or unit struct: no named fields to record
            continue;
        }
        let end = match_brace(toks, j);
        let mut k = j + 1;
        let mut bdepth = 0i32;
        while k < end {
            let t = &toks[k];
            if t.is_punct('{') {
                bdepth += 1;
            } else if t.is_punct('}') {
                bdepth -= 1;
            }
            // A field at struct depth: `name :` where the `:` is not part
            // of a `::` path and `name` is not itself a path segment.
            let is_field = bdepth == 0
                && t.kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && !toks[k - 1].is_punct(':');
            if !is_field {
                k += 1;
                continue;
            }
            let field = t.text.clone();
            // Scan the type tokens up to the comma at field depth.
            let mut d = 0i32;
            let mut m = k + 2;
            let mut is_lock = false;
            while m < end {
                let ty = &toks[m];
                if ty.is_punct('<') || ty.is_punct('(') || ty.is_punct('[') || ty.is_punct('{')
                {
                    d += 1;
                } else if ty.is_punct(')')
                    || ty.is_punct(']')
                    || ty.is_punct('}')
                    || (ty.is_punct('>') && !toks[m - 1].is_punct('-'))
                {
                    d -= 1;
                } else if d == 0 && ty.is_punct(',') {
                    break;
                } else if ty.is_ident("Mutex") || ty.is_ident("RwLock") {
                    is_lock = true;
                }
                m += 1;
            }
            if is_lock {
                let owners = model.lock_fields.entry(field).or_default();
                if !owners.contains(&owner) {
                    owners.push(owner.clone());
                }
            }
            k = m + 1;
        }
        i = end + 1;
    }
}

/// `true` when the `impl` token at `i` starts an item (not an
/// `impl Trait` type position such as `-> impl Iterator` or
/// `x: impl Into<T>`).
fn impl_is_item(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    prev.is_punct('}')
        || prev.is_punct(';')
        || prev.is_punct(']')
        || prev.is_punct('{')
        || prev.is_ident("unsafe")
}

/// Collects `impl` block headers into the model.
fn scan_impls(fi: usize, file: &SourceFile, model: &mut WorkspaceModel) {
    let toks = &file.toks;
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("impl") && impl_is_item(toks, i)) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        // First path: the trait (for `impl Trait for Type`) or the type.
        let mut last_a: Option<String> = None;
        let mut saw_for = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_ident("for") {
                saw_for = true;
                j += 1;
                break;
            }
            if t.is_punct('{') {
                break;
            }
            if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") {
                last_a = Some(t.text.clone());
                j += 1;
                if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                    j = skip_angles(toks, j);
                }
                continue;
            }
            j += 1;
        }
        let (trait_name, type_name) = if saw_for {
            // Second path: the implementing type.
            let mut ty: Option<String> = None;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].kind == TokKind::Ident
                    && !toks[j].is_ident("dyn")
                    && !toks[j].is_ident("mut")
                    && ty.is_none()
                {
                    ty = Some(toks[j].text.clone());
                }
                if toks[j].is_punct('<') {
                    j = skip_angles(toks, j);
                    continue;
                }
                j += 1;
            }
            (last_a, ty)
        } else {
            (None, last_a)
        };
        // Advance to the body brace (past any `where` clause).
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let Some(type_name) = type_name else {
            i = j + 1;
            continue;
        };
        if j >= toks.len() {
            break;
        }
        let end = match_brace(toks, j);
        model.impls.push(ImplBlock { file: fi, line, trait_name, type_name, body: (j, end) });
        i = j + 1; // keep scanning inside the body (fns, nested impls)
    }
}

/// Guard types a helper's return type can name.
fn guard_type(name: &str) -> Option<GuardKind> {
    match name {
        "RwLockReadGuard" => Some(GuardKind::Read),
        "RwLockWriteGuard" => Some(GuardKind::Write),
        "MutexGuard" => Some(GuardKind::Mutex),
        _ => None,
    }
}

/// Collects `fn` items (with impl attribution) into the model.
fn scan_fns(fi: usize, file: &SourceFile, model: &mut WorkspaceModel) {
    let toks = &file.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 2;
            continue;
        }
        let params_close = match_paren(toks, j);
        // Return type / where clause up to the body `{` (or `;` for a
        // bodyless trait declaration).
        let mut k = params_close + 1;
        let mut returns_guard = None;
        loop {
            match toks.get(k) {
                None => return,
                Some(t) if t.is_punct('{') => break,
                Some(t) if t.is_punct(';') => {
                    k = usize::MAX;
                    break;
                }
                Some(t) => {
                    if t.kind == TokKind::Ident {
                        if let Some(g) = guard_type(&t.text) {
                            returns_guard = Some(g);
                        }
                    }
                    k += 1;
                }
            }
        }
        if k == usize::MAX {
            i = params_close + 1;
            continue;
        }
        let end = match_brace(toks, k);
        // Innermost enclosing impl block in this file.
        let encl = model
            .impls
            .iter()
            .filter(|im| im.file == fi && im.body.0 < i && i < im.body.1)
            .min_by_key(|im| im.body.1 - im.body.0);
        model.fns.push(FnItem {
            file: fi,
            name,
            line,
            self_type: encl.map(|im| im.type_name.clone()),
            trait_name: encl.and_then(|im| im.trait_name.clone()),
            body: (k, end),
            is_test: file.class_at(line) == FileClass::Test,
            returns_guard,
            guards: Vec::new(),
            calls: Vec::new(),
        });
        i += 2; // nested fns are items too — keep scanning
    }
}

/// Keywords that read like calls when followed by `(`.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "in"
            | "as"
            | "let"
            | "break"
            | "continue"
            | "move"
            | "self"
            | "Self"
    )
}

/// Walks a method receiver backwards from its `.` token, returning the
/// dotted path (`self.core.tables[s].lock()` → `[self, core, tables]`).
/// Index projections are skipped; any other shape (call results, parens)
/// is unresolvable and returns an empty path.
fn walk_receiver(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut segs = VecDeque::new();
    let mut j = dot;
    loop {
        if j == 0 {
            return Vec::new();
        }
        let mut k = j - 1;
        while toks[k].is_punct(']') {
            let mut depth = 0i32;
            let mut m = k;
            loop {
                if toks[m].is_punct(']') {
                    depth += 1;
                } else if toks[m].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if m == 0 {
                    return Vec::new();
                }
                m -= 1;
            }
            if m == 0 {
                return Vec::new();
            }
            k = m - 1;
        }
        if toks[k].kind != TokKind::Ident {
            return Vec::new();
        }
        segs.push_front(toks[k].text.clone());
        if k >= 1 && toks[k - 1].is_punct('.') {
            j = k - 1;
            continue;
        }
        return segs.into();
    }
}

/// Parses the first argument of a helper call as a dotted path
/// (`table_read(&self.core.tables[s])` → `[self, core, tables]`).
fn first_arg_path(toks: &[Tok], open: usize, close: usize) -> Option<Vec<String>> {
    let mut i = open + 1;
    while i < close && (toks[i].is_punct('&') || toks[i].is_ident("mut")) {
        i += 1;
    }
    if i >= close || toks[i].kind != TokKind::Ident {
        return None;
    }
    let mut segs = vec![toks[i].text.clone()];
    i += 1;
    while i < close {
        if toks[i].is_punct(',') {
            break;
        }
        if toks[i].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            segs.push(toks[i + 1].text.clone());
            i += 2;
        } else if toks[i].is_punct('[') {
            let mut depth = 0i32;
            while i < close {
                if toks[i].is_punct('[') {
                    depth += 1;
                } else if toks[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
        } else {
            return None; // a call or operator: not a plain place expression
        }
    }
    Some(segs)
}

/// Resolves a dotted path to a lock identity, or `None`.
fn resolve_path(
    path: &[String],
    self_type: Option<&str>,
    locals: &HashSet<String>,
    lock_fields: &HashMap<String, Vec<String>>,
    line: u32,
) -> Option<LockId> {
    if path.is_empty() {
        return None;
    }
    if path[0] == "self" {
        let rest = &path[1..];
        let last = rest.last()?;
        if rest.len() == 1 {
            if let Some(st) = self_type {
                if lock_fields.get(last).is_some_and(|o| o.iter().any(|s| s == st)) {
                    return Some(LockId::Field { owner: st.to_string(), field: last.clone() });
                }
            }
        }
        let owners = lock_fields.get(last)?;
        if owners.len() == 1 {
            return Some(LockId::Field { owner: owners[0].clone(), field: last.clone() });
        }
        return None;
    }
    if path.len() == 1 && locals.contains(&path[0]) {
        return Some(LockId::Local { name: path[0].clone(), line });
    }
    let last = path.last()?;
    let owners = lock_fields.get(last)?;
    if owners.len() == 1 {
        return Some(LockId::Field { owner: owners[0].clone(), field: last.clone() });
    }
    None
}

/// Scans one fn body for local lock bindings, guard acquisitions (with
/// scopes) and outgoing calls. Nested fn items are skipped — they are
/// scanned as their own [`FnItem`]s.
fn scan_fn_body(
    model: &WorkspaceModel,
    files: &[SourceFile],
    idx: usize,
) -> (Vec<GuardSite>, Vec<CallSite>) {
    let f = &model.fns[idx];
    let toks = &files[f.file].toks;
    let (open, end) = f.body;
    let children: Vec<(usize, usize)> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(j, g)| *j != idx && g.file == f.file && g.body.0 > open && g.body.1 < end)
        .map(|(_, g)| g.body)
        .collect();
    let in_child =
        |i: usize| children.iter().find(|&&(s, e)| s <= i && i <= e).map(|&(_, e)| e);

    // Pass 1: local `let x = … Mutex::new(…) …` / `RwLock::new` bindings.
    let mut locals = HashSet::new();
    let mut i = open + 1;
    while i < end {
        if let Some(ce) = in_child(i) {
            i = ce + 1;
            continue;
        }
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = toks[j].text.clone();
                let mut d = 0i32;
                let mut m = j + 1;
                while m < end {
                    let t = &toks[m];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        d += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        d -= 1;
                    } else if t.is_punct(';') && d == 0 {
                        break;
                    } else if (t.is_ident("Mutex") || t.is_ident("RwLock"))
                        && toks.get(m + 3).is_some_and(|n| n.is_ident("new"))
                    {
                        locals.insert(name.clone());
                    }
                    m += 1;
                }
            }
        }
        i += 1;
    }

    // Precompute brace matches inside the body for enclosing-block scopes.
    let mut brace_match = HashMap::new();
    let mut stack = Vec::new();
    for (t, tok) in toks.iter().enumerate().take(end.min(toks.len() - 1) + 1).skip(open) {
        if tok.is_punct('{') {
            stack.push(t);
        } else if tok.is_punct('}') {
            if let Some(o) = stack.pop() {
                brace_match.insert(o, t);
            }
        }
    }

    // Pass 2: calls and guard acquisitions.
    let mut guards = Vec::new();
    let mut calls = Vec::new();
    let mut enclosing: Vec<usize> = Vec::new(); // stack of close indices
    let mut i = open + 1;
    while i < end {
        if let Some(ce) = in_child(i) {
            i = ce + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            enclosing.push(*brace_match.get(&i).unwrap_or(&end));
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            enclosing.pop();
            i += 1;
            continue;
        }
        if !(t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !is_call_keyword(&t.text))
        {
            i += 1;
            continue;
        }
        let name = t.text.clone();
        let line = t.line;
        let close = match_paren(toks, i + 1);
        let is_method = i > open && toks[i - 1].is_punct('.');
        let receiver = if is_method { walk_receiver(toks, i - 1) } else { Vec::new() };
        let form = if !is_method {
            CallForm::Free
        } else if receiver == ["self"] {
            CallForm::SelfMethod
        } else {
            CallForm::Method
        };
        calls.push(CallSite { name: name.clone(), tok: i, line, form });

        let intrinsic = match name.as_str() {
            "lock" => Some(GuardKind::Mutex),
            "read" => Some(GuardKind::Read),
            "write" => Some(GuardKind::Write),
            _ => None,
        };
        let acq: Option<(GuardKind, LockId)> = if is_method
            && close == i + 2
            && intrinsic.is_some()
        {
            let kind = intrinsic.unwrap_or(GuardKind::Mutex);
            match resolve_path(
                &receiver,
                f.self_type.as_deref(),
                &locals,
                &model.lock_fields,
                line,
            ) {
                Some(id) => Some((kind, id)),
                None if receiver == ["self"] && model.helpers.contains_key(&name) => {
                    f.self_type.as_ref().map(|st| {
                        (kind, LockId::Helper { owner: st.clone(), helper: name.clone() })
                    })
                }
                // Unresolvable receivers are skipped: `.read()`/`.write()`
                // on io traits and foreign types must not become guards.
                None => None,
            }
        } else if !is_method && model.helpers.contains_key(&name) {
            let (kind, _) = model.helpers[&name];
            let id = first_arg_path(toks, i + 1, close)
                .and_then(|p| {
                    resolve_path(&p, f.self_type.as_deref(), &locals, &model.lock_fields, line)
                })
                .unwrap_or(LockId::Local { name: format!("{name}(..)"), line });
            Some((kind, id))
        } else if is_method && model.helpers.contains_key(&name) && intrinsic.is_none() {
            let (kind, _) = model.helpers[&name];
            let id = resolve_path(
                &receiver,
                f.self_type.as_deref(),
                &locals,
                &model.lock_fields,
                line,
            )
            .unwrap_or(LockId::Local { name: format!("{name}(..)"), line });
            Some((kind, id))
        } else {
            None
        };

        if let Some((kind, lock)) = acq {
            // Statement start: the token after the previous `;`/`{`/`}`.
            let mut j = i;
            while j > open + 1
                && !(toks[j - 1].is_punct(';')
                    || toks[j - 1].is_punct('{')
                    || toks[j - 1].is_punct('}'))
            {
                j -= 1;
            }
            let binding = if toks[j].is_ident("let") {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                toks.get(k)
                    .filter(|t| t.kind == TokKind::Ident && t.text != "_")
                    .map(|t| t.text.clone())
            } else {
                None
            };
            let encl = *enclosing.last().unwrap_or(&end);
            let scope_end = match &binding {
                Some(b) => {
                    let mut s = encl;
                    let mut t2 = close + 1;
                    while t2 + 3 <= encl {
                        if toks[t2].is_ident("drop")
                            && toks[t2 + 1].is_punct('(')
                            && toks[t2 + 2].is_ident(b)
                            && toks[t2 + 3].is_punct(')')
                        {
                            s = t2 + 3;
                            break;
                        }
                        t2 += 1;
                    }
                    s
                }
                None => {
                    // Temporary: lives to the end of the statement (or of
                    // the enclosing expression if nested in one).
                    let mut d = 0i32;
                    let mut s = encl;
                    let mut t2 = close + 1;
                    while t2 <= encl {
                        let tt = &toks[t2];
                        if tt.is_punct('(') || tt.is_punct('[') || tt.is_punct('{') {
                            d += 1;
                        } else if tt.is_punct(')') || tt.is_punct(']') || tt.is_punct('}') {
                            d -= 1;
                            if d < 0 {
                                s = t2;
                                break;
                            }
                        } else if tt.is_punct(';') && d == 0 {
                            s = t2;
                            break;
                        }
                        t2 += 1;
                    }
                    s.min(encl)
                }
            };
            guards.push(GuardSite {
                lock,
                kind,
                line,
                call_tok: i,
                end_call: close,
                scope_end,
            });
        }
        i += 1;
    }
    (guards, calls)
}

/// `lock-order`: builds the workspace lock-acquisition graph (nested
/// acquisitions within one fn, plus one call-graph level) and reports
/// every cycle with the acquisition chains behind its edges.
fn lock_order(files: &[SourceFile], model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // edge (from, to) → (chain description, finding file, finding line)
    let mut edges: BTreeMap<(String, String), (String, String, u32)> = BTreeMap::new();
    for (fi, f) in model.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let path = &files[f.file].path;
        for g1 in &f.guards {
            let Some(k1) = g1.lock.key() else { continue };
            for g2 in &f.guards {
                let Some(k2) = g2.lock.key() else { continue };
                if g2.call_tok > g1.end_call && g2.call_tok <= g1.scope_end {
                    let chain = format!(
                        "`{}` ({}:{}) takes `{}` then takes `{}` at line {}",
                        f.name, path, g1.line, k1, k2, g2.line
                    );
                    edges.entry((k1.clone(), k2)).or_insert((chain, path.clone(), g1.line));
                }
            }
            for c in &f.calls {
                if !(c.tok > g1.end_call && c.tok <= g1.scope_end) {
                    continue;
                }
                let Some(callees) = model.fns_by_name.get(&c.name) else { continue };
                for &ci in callees {
                    if ci == fi {
                        continue;
                    }
                    let cf = &model.fns[ci];
                    if cf.is_test {
                        continue;
                    }
                    let attributable = match c.form {
                        CallForm::Free => true,
                        CallForm::SelfMethod => cf.self_type == f.self_type,
                        CallForm::Method => false,
                    };
                    if !attributable {
                        continue;
                    }
                    for g2 in &cf.guards {
                        let Some(k2) = g2.lock.key() else { continue };
                        if k2 == k1 {
                            continue; // name-propagated self-edges are noise
                        }
                        let callee = if c.name == cf.name {
                            format!("`{}`", cf.name)
                        } else {
                            format!("`{}` → `{}`", c.name, cf.name)
                        };
                        let chain = format!(
                            "`{}` ({}:{}) takes `{}`, then calls {callee} ({}:{}) which \
                             takes `{}`",
                            f.name, path, g1.line, k1, files[cf.file].path, g2.line, k2
                        );
                        edges.entry((k1.clone(), k2)).or_insert((chain, path.clone(), g1.line));
                    }
                }
            }
        }
    }

    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut reported: HashSet<String> = HashSet::new();
    for ((a, b), (chain, file, line)) in &edges {
        let cycle_nodes: Option<Vec<String>> = if a == b {
            Some(vec![a.clone()])
        } else {
            bfs_path(&adj, b, a).map(|mut back| {
                // The path ends where the cycle starts: drop the
                // duplicate so `nodes` lists each lock exactly once.
                back.pop();
                let mut nodes = vec![a.clone()];
                nodes.extend(back);
                nodes
            })
        };
        let Some(nodes) = cycle_nodes else { continue };
        let canonical = nodes
            .iter()
            .collect::<BTreeSet<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(" \u{2194} ");
        if !reported.insert(canonical) {
            continue;
        }
        let display = {
            let mut d = nodes.join("` \u{2192} `");
            d.push_str("` \u{2192} `");
            d.push_str(&nodes[0]);
            format!("`{d}`")
        };
        let mut chains = vec![chain.clone()];
        for w in nodes.windows(2) {
            if let Some((c, _, _)) = edges.get(&(w[0].clone(), w[1].clone())) {
                if !chains.contains(c) {
                    chains.push(c.clone());
                }
            }
        }
        if nodes.len() > 1 {
            if let Some((c, _, _)) =
                edges.get(&(nodes[nodes.len() - 1].clone(), nodes[0].clone()))
            {
                if !chains.contains(c) {
                    chains.push(c.clone());
                }
            }
        }
        let msg = if a == b {
            format!(
                "`{a}` is acquired again while already held — self-deadlock (or reader \
                 starvation) under contention; chain: {}",
                chains.join("; ")
            )
        } else {
            format!(
                "potential deadlock: lock-order cycle {display}; acquisition chains: {}",
                chains.join("; ")
            )
        };
        out.push(Finding { file: file.clone(), line: *line, rule: "lock-order", message: msg });
    }
}

/// Shortest path `from ⇝ to` over the edge list, as the node sequence
/// starting at `from` and ending at `to` (BFS).
fn bfs_path(adj: &BTreeMap<&str, Vec<&str>>, from: &str, to: &str) -> Option<Vec<String>> {
    let mut parent: HashMap<&str, &str> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: HashSet<&str> = HashSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n.to_string()];
            let mut cur = n;
            while let Some(&p) = parent.get(cur) {
                path.push(p.to_string());
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if seen.insert(m) {
                parent.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// `guard-scope`: no obs/journal/metrics traffic while an exclusive
/// (write or mutex) guard is live. The PR 8/PR 9 invariant: lock hold
/// time must not grow with the observability layer. `Obs::timer()` is
/// exempt (a pure clock read), as are the obs layer's own files, test
/// code, and binaries.
fn guard_scope(files: &[SourceFile], model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for f in &model.fns {
        if f.is_test || f.guards.is_empty() {
            continue;
        }
        let file = &files[f.file];
        if file.class != FileClass::Library || file.path.starts_with("crates/core/src/obs/") {
            continue;
        }
        let exclusive: Vec<&GuardSite> =
            f.guards.iter().filter(|g| g.kind != GuardKind::Read).collect();
        if exclusive.is_empty() {
            continue;
        }
        let toks = &files[f.file].toks;
        let (open, end) = f.body;
        let children: Vec<(usize, usize)> = model
            .fns
            .iter()
            .filter(|g| {
                g.file == f.file && g.body.0 > open && g.body.1 < end && g.body != f.body
            })
            .map(|g| g.body)
            .collect();
        let mut i = open + 1;
        while i < end {
            if let Some(&(_, ce)) = children.iter().find(|&&(s, e)| s <= i && i <= e) {
                i = ce + 1;
                continue;
            }
            let t = &toks[i];
            let site: Option<(usize, String)> = if t.is_ident("obs")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
                && !toks[i + 2].is_ident("timer")
            {
                Some((i + 2, format!("obs.{}(..)", toks[i + 2].text)))
            } else if t.is_ident("EventJournal") || t.is_ident("MetricsRegistry") {
                Some((i, format!("{} access", t.text)))
            } else {
                None
            };
            if let Some((site_tok, desc)) = site {
                if file.class_at(toks[site_tok].line) != FileClass::Test {
                    for g in &exclusive {
                        if site_tok > g.end_call && site_tok <= g.scope_end {
                            out.push(Finding {
                                file: file.path.clone(),
                                line: toks[site_tok].line,
                                rule: "guard-scope",
                                message: format!(
                                    "`{desc}` runs while the {} guard on `{}` (line {}) is \
                                     live: record after the guard drops — lock hold time \
                                     must not grow with observability",
                                    g.kind.noun(),
                                    g.lock.render(),
                                    g.line
                                ),
                            });
                            break;
                        }
                    }
                }
                i = site_tok + 1;
                continue;
            }
            i += 1;
        }
    }
}

/// Batch/cursor/streaming surfaces of `MultidimIndex` whose overrides
/// must be pinned bit-identical by an equivalence suite.
const SURFACE: &[&str] = &[
    "batch_query",
    "batch_range_query_filtered",
    "range_query_cursor",
    "range_query_filtered_cursor",
    "batch_query_streaming",
];

/// `trait-contract`: every non-test `impl MultidimIndex` that overrides
/// a batch/cursor/streaming surface must be referenced from an
/// equivalence test file (`…equivalence….rs` under `tests/`), which is
/// where the house bit-identity sweeps live.
fn trait_contract(files: &[SourceFile], model: &WorkspaceModel, out: &mut Vec<Finding>) {
    let mut equiv_idents: HashSet<&str> = HashSet::new();
    for file in files {
        if file.class == FileClass::Test && file.path.contains("equivalence") {
            for t in &file.toks {
                if t.kind == TokKind::Ident {
                    equiv_idents.insert(t.text.as_str());
                }
            }
        }
    }
    for imp in &model.impls {
        if imp.trait_name.as_deref() != Some("MultidimIndex") {
            continue;
        }
        let file = &files[imp.file];
        if file.class_at(imp.line) == FileClass::Test {
            continue;
        }
        let overridden: Vec<&str> = model
            .fns
            .iter()
            .filter(|f| {
                f.file == imp.file
                    && f.body.0 > imp.body.0
                    && f.body.1 < imp.body.1
                    && SURFACE.contains(&f.name.as_str())
            })
            .map(|f| f.name.as_str())
            .collect();
        if overridden.is_empty() || equiv_idents.contains(imp.type_name.as_str()) {
            continue;
        }
        out.push(Finding {
            file: file.path.clone(),
            line: imp.line,
            rule: "trait-contract",
            message: format!(
                "`impl MultidimIndex for {}` overrides `{}` but `{}` never appears in an \
                 equivalence suite (a test file whose name contains `equivalence`): add it \
                 to the bit-identity sweep so the override cannot drift from the reference",
                imp.type_name,
                overridden.join("`, `"),
                imp.type_name
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;

    fn model_of(src: &str) -> (Vec<SourceFile>, WorkspaceModel) {
        let files = vec![SourceFile::new("crates/core/src/x.rs".to_string(), src)];
        let model = build(&files);
        (files, model)
    }

    #[test]
    fn struct_lock_fields_are_collected() {
        let (_, m) = model_of(
            "struct H { state: RwLock<Vec<u64>>, insert: Mutex<()>, n: usize }\n\
             struct Plain { a: Vec<u64> }\n",
        );
        assert_eq!(m.lock_fields.get("state"), Some(&vec!["H".to_string()]));
        assert_eq!(m.lock_fields.get("insert"), Some(&vec!["H".to_string()]));
        assert!(!m.lock_fields.contains_key("n"));
        assert!(!m.lock_fields.contains_key("a"));
    }

    #[test]
    fn impls_and_fn_attribution() {
        let (_, m) = model_of(
            "impl MultidimIndex for Handle {\n    fn batch_query(&self) {}\n}\n\
             impl Handle {\n    fn inherent(&self) {}\n}\n\
             fn free() {}\n",
        );
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("MultidimIndex"));
        assert_eq!(m.impls[0].type_name, "Handle");
        assert_eq!(m.impls[1].trait_name, None);
        let bq = m.fns.iter().find(|f| f.name == "batch_query").expect("batch_query");
        assert_eq!(bq.self_type.as_deref(), Some("Handle"));
        assert_eq!(bq.trait_name.as_deref(), Some("MultidimIndex"));
        let free = m.fns.iter().find(|f| f.name == "free").expect("free");
        assert_eq!(free.self_type, None);
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let (_, m) = model_of("fn f() -> impl Iterator<Item = u32> {\n    0..3\n}\n");
        assert!(m.impls.is_empty());
    }

    #[test]
    fn guard_helper_detected_by_return_type() {
        let (_, m) = model_of(
            "fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {\n\
                 lock.read().unwrap()\n\
             }\n",
        );
        assert_eq!(m.helpers.get("read_guard").map(|h| h.0), Some(GuardKind::Read));
    }

    #[test]
    fn self_field_acquisition_and_drop_scope() {
        let (_, m) = model_of(
            "struct H { state: RwLock<u64>, obs: u32 }\n\
             impl H {\n\
                 fn f(&self) {\n\
                     let mut st = self.state.write().unwrap_or_else(|p| p.into_inner());\n\
                     *st += 1;\n\
                     drop(st);\n\
                     touch();\n\
                 }\n\
             }\n",
        );
        let f = m.fns.iter().find(|f| f.name == "f").expect("fn f");
        assert_eq!(f.guards.len(), 1);
        let g = &f.guards[0];
        assert_eq!(g.kind, GuardKind::Write);
        assert_eq!(g.lock, LockId::Field { owner: "H".into(), field: "state".into() });
        // `touch()` is called after drop(st): outside the guard scope.
        let touch = f.calls.iter().find(|c| c.name == "touch").expect("touch call");
        assert!(touch.tok > g.scope_end, "drop(st) must close the guard scope");
    }

    #[test]
    fn local_mutex_binding_resolves() {
        let (_, m) = model_of(
            "fn f() {\n\
                 let done = Mutex::new(0u64);\n\
                 *done.lock().unwrap_or_else(|p| p.into_inner()) += 1;\n\
             }\n",
        );
        let f = &m.fns[0];
        assert_eq!(f.guards.len(), 1);
        assert!(matches!(&f.guards[0].lock, LockId::Local { name, .. } if name == "done"));
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let (_, m) = model_of(
            "fn f(r: &mut impl std::io::Read) {\n\
                 let mut buf = [0u8; 4];\n\
                 let _ = r.read(&mut buf);\n\
             }\n",
        );
        assert!(m.fns[0].guards.is_empty());
    }

    #[test]
    fn lock_order_cycle_reported_with_both_chains() {
        let src = "struct L { a: Mutex<u64>, b: Mutex<u64> }\n\
             impl L {\n\
                 fn x(&self) {\n\
                     let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());\n\
                     let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }\n\
                 fn y(&self) {\n\
                     let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());\n\
                     let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());\n\
                     drop(ga);\n\
                     drop(gb);\n\
                 }\n\
             }\n";
        let (files, m) = model_of(src);
        let mut out = Vec::new();
        lock_order(&files, &m, &mut out);
        assert_eq!(out.len(), 1, "one canonical cycle: {out:?}");
        let msg = &out[0].message;
        assert!(msg.contains("L.a") && msg.contains("L.b"), "{msg}");
        assert!(msg.contains("`x`") && msg.contains("`y`"), "both chains named: {msg}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct L { a: Mutex<u64>, b: Mutex<u64> }\n\
             impl L {\n\
                 fn x(&self) {\n\
                     let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());\n\
                     let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }\n\
                 fn y(&self) {\n\
                     let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());\n\
                     let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }\n\
             }\n";
        let (files, m) = model_of(src);
        let mut out = Vec::new();
        lock_order(&files, &m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn guard_scope_flags_obs_under_write_guard() {
        let src = "struct H { state: RwLock<u64>, obs: Obs }\n\
             impl H {\n\
                 fn f(&self) {\n\
                     let mut st = self.state.write().unwrap_or_else(|p| p.into_inner());\n\
                     *st += 1;\n\
                     self.obs.record_insert(1);\n\
                     drop(st);\n\
                 }\n\
                 fn g(&self) {\n\
                     let mut st = self.state.write().unwrap_or_else(|p| p.into_inner());\n\
                     *st += 1;\n\
                     drop(st);\n\
                     self.obs.record_insert(1);\n\
                 }\n\
             }\n";
        let (files, m) = model_of(src);
        let mut out = Vec::new();
        guard_scope(&files, &m, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6);
        assert!(out[0].message.contains("H.state"), "{}", out[0].message);
    }

    #[test]
    fn read_guards_are_exempt_from_guard_scope() {
        let src = "struct H { state: RwLock<u64>, obs: Obs }\n\
             impl H {\n\
                 fn f(&self) {\n\
                     let st = self.state.read().unwrap_or_else(|p| p.into_inner());\n\
                     self.obs.record_insert(*st);\n\
                     drop(st);\n\
                 }\n\
             }\n";
        let (files, m) = model_of(src);
        let mut out = Vec::new();
        guard_scope(&files, &m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
