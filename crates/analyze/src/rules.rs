//! The project-invariant rule table.
//!
//! Every rule encodes an invariant the compiler cannot see but the
//! workspace's correctness arguments rely on (see `ARCHITECTURE.md`
//! Layer 9 for the full rationale):
//!
//! | rule | invariant |
//! |---|---|
//! | `panic-free-library`  | library code returns errors; panicking APIs are explicit, documented and suppressed by name |
//! | `nan-unsafe-cmp`      | float comparators use `f64::total_cmp`, never `partial_cmp(..).unwrap()` |
//! | `kernel-encapsulation`| cell scans and `PageStore` slab access live in `kernel.rs`/`pages.rs` only |
//! | `thread-discipline`   | threads are spawned only by the exec and shard fan-out pools and the maintainer |
//! | `seeded-randomness`   | RNGs come from explicit seeds — no environmental entropy |
//! | `doc-headers`         | every `pub fn` in `coax-core`'s exec/maint documents its contract |
//! | `obs-naming`          | metric names are literal, snake_case, dot-namespaced, registered through the registry constructors |
//! | `lock-order`          | the workspace lock-acquisition graph is acyclic (cross-file, see `model.rs`) |
//! | `guard-scope`         | no obs/journal/metrics traffic while a write/mutex guard is live (cross-file) |
//! | `stale-suppression`   | every `allow(...)` still silences a finding — the ledger only shrinks (engine audit) |
//! | `trait-contract`      | `MultidimIndex` impls overriding batch/cursor surfaces are pinned by an equivalence suite (cross-file) |
//!
//! This module holds the *per-file* rules (the first seven); the
//! cross-file rules live in [`crate::model`] and the suppression audit
//! in [`crate::engine`], but all share this table as the registry.
//!
//! Rules are scoped by [`FileClass`] (library / binary / test) and, for
//! the encapsulation rules, by an allow-list of file paths. A finding can
//! be silenced inline with `// coax-analyze: allow(<rule>, <reason>)` on
//! the same or the preceding line; the reason is mandatory.

use crate::engine::{FileClass, FileContext, Finding};
use crate::lexer::{Tok, TokKind};

/// Static metadata for one rule.
pub struct RuleInfo {
    /// Stable identifier used in diagnostics and suppressions.
    pub name: &'static str,
    /// One-line description for `--json` consumers and `--help`.
    pub description: &'static str,
}

/// Every rule the analyzer enforces, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "panic-free-library",
        description: "no unwrap()/expect()/panic! in non-test library code",
    },
    RuleInfo {
        name: "nan-unsafe-cmp",
        description:
            "no partial_cmp(..).unwrap()/expect() float comparators; use f64::total_cmp",
    },
    RuleInfo {
        name: "kernel-encapsulation",
        description:
            "PageStore column slabs and scan primitives are touched only by kernel.rs/pages.rs",
    },
    RuleInfo {
        name: "thread-discipline",
        description:
            "std::thread::spawn/scope only in coax-core's exec.rs, shard.rs and maint/",
    },
    RuleInfo {
        name: "seeded-randomness",
        description: "RNGs are constructed from explicit seeds, never environmental entropy",
    },
    RuleInfo {
        name: "doc-headers",
        description: "every pub fn in coax-core's exec/maint carries a doc comment",
    },
    RuleInfo {
        name: "obs-naming",
        description:
            "metric registrations pass a literal snake_case dot-namespaced name to the \
             registry constructors",
    },
    RuleInfo {
        name: "lock-order",
        description:
            "the workspace lock-acquisition graph (nested guards plus one call-graph level) \
             has no cycle",
    },
    RuleInfo {
        name: "guard-scope",
        description:
            "no obs/journal/metrics call while a write or mutex guard is live — record \
             after the guard drops",
    },
    RuleInfo {
        name: "stale-suppression",
        description:
            "every allow(...) comment still silences a finding; dead suppressions are \
             deleted, not accumulated",
    },
    RuleInfo {
        name: "trait-contract",
        description: "every MultidimIndex impl overriding a batch/cursor/streaming surface is \
             referenced from an equivalence test file",
    },
];

/// Runs every rule over one file's token stream.
pub fn run_rules(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    panic_free_library(ctx, &mut out);
    nan_unsafe_cmp(ctx, &mut out);
    kernel_encapsulation(ctx, &mut out);
    thread_discipline(ctx, &mut out);
    seeded_randomness(ctx, &mut out);
    doc_headers(ctx, &mut out);
    obs_naming(ctx, &mut out);
    out
}

fn finding(ctx: &FileContext<'_>, line: u32, rule: &'static str, message: String) -> Finding {
    Finding { file: ctx.path.to_string(), line, rule, message }
}

/// Index of the `)` matching the `(` at `open` (or the last token).
pub(crate) fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// `panic-free-library`: `.unwrap()`, `.expect(` and `panic!` are banned
/// in library code. The invariant: every fallible library path surfaces a
/// typed error (`QueryError`, `RowError`, …); the few deliberate
/// panicking APIs (documented `# Panics` contracts, poisoned-lock
/// propagation) are suppressed by name with a reason, which keeps them
/// enumerable.
fn panic_free_library(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.class_at(toks[i].line) != FileClass::Library {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(
                ctx,
                t.line,
                "panic-free-library",
                format!(
                    "`.{}(..)` in library code: surface a typed error (`?`, `try_*`) or add \
                     `coax-analyze: allow(panic-free-library, <reason>)`",
                    t.text
                ),
            ));
        }
        if t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            out.push(finding(
                ctx,
                t.line,
                "panic-free-library",
                "`panic!` in library code: surface a typed error or add \
                 `coax-analyze: allow(panic-free-library, <reason>)`"
                    .to_string(),
            ));
        }
    }
}

/// `nan-unsafe-cmp`: a `partial_cmp(..).unwrap()/.expect(..)` comparator
/// panics the first time a NaN reaches it. Dataset ingestion validates
/// finiteness, but stats/learn helpers also take raw slices — every float
/// comparator in the workspace uses `f64::total_cmp` instead, which is
/// total over NaN and bit-identical to `partial_cmp` on the finite values
/// the indexes store.
fn nan_unsafe_cmp(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("partial_cmp") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let close = match_paren(toks, i + 1);
        let panicky = toks.get(close + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(close + 2)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
        if panicky {
            out.push(finding(
                ctx,
                toks[i].line,
                "nan-unsafe-cmp",
                "`partial_cmp(..)` followed by `.unwrap()`/`.expect(..)` panics on NaN: \
                 use `f64::total_cmp` or validate values at ingestion"
                    .to_string(),
            ));
        }
    }
}

/// Files allowed to touch `PageStore` slabs and scan primitives.
const KERNEL_FILES: &[&str] = &["crates/index/src/kernel.rs", "crates/index/src/pages.rs"];

/// `kernel-encapsulation`: the vectorized scan kernel's bit-identity
/// contract (vectorized == scalar reference, ids/order/counters) is only
/// auditable while every cell scan flows through `kernel.rs`/`pages.rs`.
/// Outside those files, code must call `PageStore::scan_cell*` /
/// `PageStore::scan_run_cached` rather than pulling the raw column slabs
/// or composing tile primitives itself.
fn kernel_encapsulation(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if KERNEL_FILES.contains(&ctx.path) {
        return;
    }
    const BANNED_CALLS: &[&str] = &["columns", "packed_ids"];
    const BANNED_IDENTS: &[&str] =
        &["tile_mask", "select_tile", "scan_columnar", "scan_columnar_identity"];
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.class_at(toks[i].line) == FileClass::Test {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method_call = i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if method_call && BANNED_CALLS.contains(&t.text.as_str()) {
            out.push(finding(
                ctx,
                t.line,
                "kernel-encapsulation",
                format!(
                    "`.{}()` exposes PageStore column slabs outside kernel.rs/pages.rs: \
                     scan through `PageStore::scan_cell*`/`scan_run_cached` instead",
                    t.text
                ),
            ));
        }
        if BANNED_IDENTS.contains(&t.text.as_str()) {
            out.push(finding(
                ctx,
                t.line,
                "kernel-encapsulation",
                format!(
                    "`{}` is a scan-kernel primitive: cell-scan loops live in \
                     kernel.rs/pages.rs so the scalar/vector bit-identity contract \
                     stays auditable in one place",
                    t.text
                ),
            ));
        }
    }
}

/// Files allowed to spawn threads: the exec layer's pool, the
/// maintainer's background loop, and the shard fan-out pool (sized by
/// the same `ExecConfig`).
fn thread_allowed(path: &str) -> bool {
    path == "crates/core/src/exec.rs"
        || path == "crates/core/src/shard.rs"
        || path.contains("crates/core/src/maint/")
}

/// `thread-discipline`: worker threads are owned by the exec layer's
/// scoped pool, the shard fan-out pool, and the maintainer's background
/// loop. Ad-hoc spawns elsewhere would bypass `ExecConfig` sizing and the epoch-swap
/// shutdown protocol.
fn thread_discipline(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if thread_allowed(ctx.path) {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.class_at(toks[i].line) == FileClass::Test {
            continue;
        }
        if toks[i].is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("spawn") || t.is_ident("scope"))
        {
            let what = &toks[i + 3].text;
            out.push(finding(
                ctx,
                toks[i].line,
                "thread-discipline",
                format!(
                    "`thread::{what}` outside exec.rs/shard.rs/maint/: thread lifecycles \
                     are owned by the exec and shard fan-out pools (`ExecConfig`) and the \
                     `Maintainer`"
                ),
            ));
        }
    }
}

/// `seeded-randomness`: the equivalence suites and benches are only
/// reproducible if every RNG is seeded explicitly. The vendored `rand`
/// offers `seed_from_u64` alone, so today this bans the upstream
/// entropy-drawing constructors by name before they can be introduced.
fn seeded_randomness(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];
    for t in ctx.toks {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push(finding(
                ctx,
                t.line,
                "seeded-randomness",
                format!(
                    "`{}` draws entropy from the environment: construct RNGs with an \
                     explicit seed (`StdRng::seed_from_u64`) so every run is reproducible",
                    t.text
                ),
            ));
        }
    }
}

/// Files the `doc-headers` rule covers.
fn doc_headers_applies(path: &str) -> bool {
    path == "crates/core/src/exec.rs" || path.contains("crates/core/src/maint/")
}

/// `doc-headers`: the exec/maint layers carry the workspace's subtlest
/// contracts (probe ordering, epoch swaps, snapshot pinning); every
/// `pub fn` there must state its contract in a doc comment, not just in
/// the implementation.
fn doc_headers(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !doc_headers_applies(ctx.path) {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("pub") || ctx.class_at(toks[i].line) == FileClass::Test {
            continue;
        }
        // Optional restricted visibility: `pub(crate)`, `pub(super)`, …
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            j = match_paren(toks, j) + 1;
        }
        // Qualifiers before `fn`.
        while toks
            .get(j)
            .is_some_and(|t| t.is_ident("const") || t.is_ident("async") || t.is_ident("unsafe"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        let name = toks.get(j + 1).map(|t| t.text.clone()).unwrap_or_default();
        // Walk back over attributes (`#[inline]`, …) to the block start;
        // a `#[doc = …]` attribute counts as documentation.
        let mut first = i;
        let mut doc_attr = false;
        while first >= 1 && toks[first - 1].is_punct(']') {
            let mut depth = 0usize;
            let mut m = first - 1;
            loop {
                if toks[m].is_punct(']') {
                    depth += 1;
                } else if toks[m].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if m == 0 {
                    break;
                }
                m -= 1;
            }
            if m >= 1 && toks[m - 1].is_punct('#') {
                if toks[m..first].iter().any(|t| t.is_ident("doc")) {
                    doc_attr = true;
                }
                first = m - 1;
            } else {
                break;
            }
        }
        let first_line = toks[first].line;
        let documented =
            doc_attr || ctx.comments.iter().any(|c| c.is_doc && c.last_line + 1 == first_line);
        if !documented {
            out.push(finding(
                ctx,
                toks[i].line,
                "doc-headers",
                format!(
                    "`pub fn {name}` in the exec/maint layer has no doc comment: \
                     state the contract (ordering, blocking, epoch behaviour) above it"
                ),
            ));
        }
    }
}

/// Mirror of `coax_core::obs::is_valid_metric_name` (the analyzer is
/// dependency-free by design): ≥2 dot-separated segments, each
/// `[a-z][a-z0-9_]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut segments = 0;
    for seg in name.split('.') {
        let mut chars = seg.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// `obs-naming`: the metric name set is an API surface — dashboards,
/// scrape configs and the Prometheus rendering all key on it. Every
/// `.counter(..)` / `.gauge(..)` / `.histogram(..)` registration — and
/// the shard-labelled `.*_shard(..)` variants, whose first argument is
/// the family name — must pass a **string literal** (so `coax-analyze`
/// can enumerate the full set statically) matching the grammar
/// `seg(.seg)+` with snake_case segments. Runtime-computed names would
/// make the set unauditable and the Prometheus name mangling
/// unreviewable; shard numbers travel as a label, never in the name.
fn obs_naming(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const CONSTRUCTORS: &[&str] =
        &["counter", "gauge", "histogram", "counter_shard", "gauge_shard", "histogram_shard"];
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.class_at(toks[i].line) == FileClass::Test {
            continue;
        }
        let t = &toks[i];
        let registration = t.kind == TokKind::Ident
            && CONSTRUCTORS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !registration {
            continue;
        }
        match toks.get(i + 2) {
            Some(arg) if arg.kind == TokKind::Lit && !arg.text.is_empty() => {
                if !valid_metric_name(&arg.text) {
                    out.push(finding(
                        ctx,
                        arg.line,
                        "obs-naming",
                        format!(
                            "metric name \"{}\" breaks the grammar: dot-separated \
                             snake_case segments (`[a-z][a-z0-9_]*`), at least one \
                             namespace (e.g. `coax.query.count`)",
                            arg.text
                        ),
                    ));
                }
            }
            _ => {
                out.push(finding(
                    ctx,
                    t.line,
                    "obs-naming",
                    format!(
                        "`.{}(..)` registers a metric without a literal name: pass a \
                         string literal so the metric name set stays statically \
                         enumerable",
                        t.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::analyze_source;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        analyze_source(path, src).0.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_flagged_in_library_not_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_hit("crates/core/src/a.rs", src), vec!["panic-free-library"]);
        assert!(rules_hit("crates/coax/tests/a.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/bin/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(rules_hit("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_flagged_expect_too() {
        let src = "fn c(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n";
        let hits = rules_hit("crates/bench/src/bin/a.rs", src);
        assert_eq!(hits, vec!["nan-unsafe-cmp"]);
        let src = "fn c(a: f64, b: f64) { a.partial_cmp(&b).expect(\"finite\"); }\n";
        let hits = rules_hit("crates/core/src/a.rs", src);
        // Library code trips both the NaN rule and the panic rule.
        assert!(hits.contains(&"nan-unsafe-cmp"));
        assert!(hits.contains(&"panic-free-library"));
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "fn c(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(rules_hit("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn slab_access_flagged_outside_kernel_files() {
        let src = "fn f(ps: &PageStore) { let _ = ps.columns(); }\n";
        assert_eq!(
            rules_hit("crates/index/src/grid_file.rs", src),
            vec!["kernel-encapsulation"]
        );
        assert!(rules_hit("crates/index/src/pages.rs", src).is_empty());
        assert!(rules_hit("crates/index/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_exec() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_hit("crates/index/src/grid_file.rs", src), vec!["thread-discipline"]);
        assert!(rules_hit("crates/core/src/exec.rs", src).is_empty());
        assert!(rules_hit("crates/core/src/shard.rs", src).is_empty());
        assert!(rules_hit("crates/core/src/maint/policy.rs", src).is_empty());
    }

    #[test]
    fn entropy_rngs_flagged_everywhere() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(rules_hit("crates/coax/tests/a.rs", src), vec!["seeded-randomness"]);
        assert_eq!(rules_hit("crates/data/src/a.rs", src), vec!["seeded-randomness"]);
    }

    #[test]
    fn metric_registration_names_are_validated() {
        let good = "fn f(r: &MetricsRegistry) { r.counter(\"coax.query.count\"); }\n";
        assert!(rules_hit("crates/core/src/obs/mod.rs", good).is_empty());
        let bad_grammar = "fn f(r: &MetricsRegistry) { r.gauge(\"CoaxEpoch\"); }\n";
        assert_eq!(rules_hit("crates/core/src/obs/mod.rs", bad_grammar), vec!["obs-naming"]);
        let single_segment = "fn f(r: &MetricsRegistry) { r.histogram(\"latency\"); }\n";
        assert_eq!(rules_hit("crates/core/src/obs/mod.rs", single_segment), vec!["obs-naming"]);
        let computed = "fn f(r: &MetricsRegistry, n: &str) { r.counter(n); }\n";
        assert_eq!(rules_hit("crates/core/src/obs/mod.rs", computed), vec!["obs-naming"]);
        // Shard-labelled constructors: first argument is the family name
        // and obeys the same grammar; the shard travels as a label.
        let shard_good =
            "fn f(r: &MetricsRegistry) { r.histogram_shard(\"coax.query.latency_us\", Some(3)); }\n";
        assert!(rules_hit("crates/core/src/obs/mod.rs", shard_good).is_empty());
        let shard_computed =
            "fn f(r: &MetricsRegistry, n: &str) { r.counter_shard(n, Some(0)); }\n";
        assert_eq!(rules_hit("crates/core/src/obs/mod.rs", shard_computed), vec!["obs-naming"]);
        // Tests may register scratch metrics however they like.
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t(r: &MetricsRegistry) { r.counter(\"X\"); }\n}\n";
        assert!(rules_hit("crates/core/src/obs/mod.rs", in_test).is_empty());
        // Field access and definitions are not registrations.
        let not_calls =
            "pub fn counter(&self, name: &str) {}\nfn g(s: &S) { s.histogram.is_some(); }\n";
        assert!(rules_hit("crates/core/src/obs/registry.rs", not_calls).is_empty());
    }

    #[test]
    fn undocumented_pub_fn_flagged_in_exec_only() {
        let src = "pub fn mystery() {}\n";
        assert_eq!(rules_hit("crates/core/src/exec.rs", src), vec!["doc-headers"]);
        assert!(rules_hit("crates/core/src/translate.rs", src).is_empty());
        let documented = "/// Does a thing.\npub fn mystery() {}\n";
        assert!(rules_hit("crates/core/src/exec.rs", documented).is_empty());
        let attr_between = "/// Docs.\n#[inline]\npub fn mystery() {}\n";
        assert!(rules_hit("crates/core/src/exec.rs", attr_between).is_empty());
    }
}
